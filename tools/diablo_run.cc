// diablo_run: compile and execute a loop-language program from a file,
// binding inputs from the command line or from CSV files, and print the
// requested outputs.
//
// Usage:
//   diablo_run PROGRAM.diablo [options]
//
// Options:
//   --scalar NAME=VALUE      bind a scalar input (int, double, bool or
//                            quoted string, inferred from the spelling)
//   --vector NAME=FILE.csv   bind a sparse vector: each line `key,value`
//   --matrix NAME=FILE.csv   bind a sparse matrix: each line `i,j,value`
//   --print NAME             print a scalar or array output (repeatable)
//   --target                 print the translated target code
//   --plan-report            print the engine stage report after the run
//   --explain-analyze        print the plan tree annotated with observed
//                            runtime stats (task-time percentiles, skew
//                            ratio, stragglers) after the run
//   --trace-out=FILE         write a Chrome trace_event JSON of the run
//                            (open in chrome://tracing or Perfetto)
//   --profile-out=FILE       write the schema-stable profile JSON
//                            (validated by tools/check_trace_profile.py)
//   --metrics-out=FILE       write the metrics registry (named counters,
//                            gauges, histograms; per-stage peak RSS and
//                            accumulator watermarks) after the run, as
//                            Prometheus text exposition — or JSON when
//                            FILE ends in .json
//   --events-out=FILE        write the structured event log as JSONL
//                            (task_retry, worker_respawn, lineage
//                            recovery, skew salting, ...; validated by
//                            tools/check_events.py)
//   --profile-in=FILE        feed a prior run's --profile-out JSON back
//                            into the planner: broadcast-vs-hash join and
//                            the partition count (unless --partitions is
//                            given) follow the measured stage facts
//                            instead of static estimates. A stale profile
//                            (renamed program, shifted lines) degrades
//                            gracefully to the static rules.
//   --no-skew                disable runtime skew mitigation (salting of
//                            hot reduce tasks; SkewConfig::mitigate=0)
//   --no-trace               disable span recording (EngineConfig::tracing)
//   --no-fusion              eager narrow operators (fuse_narrow=0, AB6)
//   --no-hash-agg            ordered-map shuffle aggregation
//                            (hash_aggregation=0, AB7)
//   --no-pool                spawn threads per wave (persistent_pool=0)
//   --no-columnar            boxed per-row execution (columnar=0, AB9)
//   --partitions N           engine partitions (default 8)
//   --workers N              simulated cluster workers (default 4)
//   --threads N              host threads executing partition tasks
//   --broadcast-mb N         enable broadcast joins for arrays <= N MB
//   --serialize-shuffles     round-trip shuffled rows through the codec
//   --fault-seed N           seed of the deterministic fault injector
//   --fail-rate P            per-attempt task kill probability [0,1]
//   --straggler-rate P       straggler probability [0,1]
//   --corrupt-rate P         shuffle-payload corruption probability
//                            (needs --serialize-shuffles to take effect)
//   --max-attempts N         retry budget per task (default 4)
//   --kill S:P               kill partition P of stage S once (repeatable)
//   --lose S:P[:I]           lose input partition P of stage S (input I,
//                            default 0); recomputed from lineage
//   --tiled NAME             store the named matrix as packed tiles (§5;
//                            repeatable)
//   --tile-rows R            tile rows (default 32)
//   --tile-cols C            tile columns (default 32)
//   --no-opt                 disable the comprehension optimizer
//   --local                  run on the single-process local algebra
//                            backend instead of the distributed engine
//   --reference              run the sequential reference interpreter
//                            instead of the distributed engine
//   --dist-workers N         execute task waves on N forked worker
//                            processes over loopback TCP (src/dist/);
//                            output is byte-identical to in-process runs
//   --dist-heartbeat-ms N    worker heartbeat period (default 250)
//   --dist-missed-beats N    heartbeats missed before a worker is
//                            declared dead (default 8)
//   --dist-deadline-ms N     per-task deadline before the holding worker
//                            is declared dead (default 30000)
//   --dist-max-task-retries N  re-dispatches allowed per task after real
//                            worker deaths (default 3)
//   --dist-max-respawns N    dead workers re-forked per run (default 4)
//   --dist-stall W:MS        test hook: worker W sleeps MS ms per task
//   --dist-verbose           log dispatch/death/respawn events to stderr
//   --chaos-kill S:W[:K]     SIGKILL worker W during stage S after it
//                            returned K results (default 0; repeatable);
//                            requires --dist-workers
//   --chaos-kill-rate P      per-(stage,worker,result) SIGKILL
//                            probability [0,1], drawn deterministically
//                            from the chaos seed
//   --chaos-seed N           seed of the deterministic chaos schedule
//
// Exit codes (documented in docs/LANGUAGE.md): 0 success, 1 CLI or I/O
// error, 2 parse error, 3 restriction violation, 4 translation error,
// 5 runtime error (including an exhausted fault-retry budget), 6 invalid
// argument, 7 unsupported feature, 8 distributed-backend failure (retry
// or respawn budget exhausted; see docs/diagnostics.md). On any error
// the tool prints a single
// one-line diagnostic to stderr and emits none of the requested outputs —
// except restriction violations (exit 3), which print the analyzer's full
// structured diagnostics (codes, carets, race witnesses; the same output
// as diablo_lint) to stderr, one block per violation.
//
// Example:
//   diablo_run wordcount.diablo --vector words=words.csv --print C

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "analysis/absint.h"
#include "analysis/loop_lint.h"
#include "analysis/merge_algebra.h"
#include "analysis/restrictions.h"
#include "diablo/diablo.h"
#include "dist/coordinator.h"
#include "parser/parser.h"
#include "runtime/events.h"
#include "runtime/metrics_registry.h"
#include "runtime/trace.h"

namespace {

using diablo::Status;
using diablo::StatusCode;
using diablo::runtime::Value;
using diablo::runtime::ValueVec;

/// Maps an error category to the process exit code documented above.
int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kParseError:
      return 2;
    case StatusCode::kRestrictionViolation:
      return 3;
    case StatusCode::kTranslationError:
      return 4;
    case StatusCode::kRuntimeError:
    case StatusCode::kTaskLost:
      return 5;
    case StatusCode::kInvalidArgument:
      return 6;
    case StatusCode::kUnsupported:
      return 7;
    case StatusCode::kDistError:
      return 8;
  }
  return 1;
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "diablo_run: %s\n", message.c_str());
  std::exit(1);
}

[[noreturn]] void DieStatus(const Status& status) {
  // One line, first line of the message only: pipelines parse this.
  std::string msg = status.ToString();
  size_t eol = msg.find('\n');
  if (eol != std::string::npos) msg.resize(eol);
  std::fprintf(stderr, "diablo_run: %s\n", msg.c_str());
  std::exit(ExitCodeFor(status.code()));
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) Die("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses a literal: bool, int, double, or quoted/bare string.
Value ParseScalar(const std::string& text) {
  if (text == "true") return Value::MakeBool(true);
  if (text == "false") return Value::MakeBool(false);
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    return Value::MakeString(text.substr(1, text.size() - 2));
  }
  char* end = nullptr;
  long long as_int = std::strtoll(text.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !text.empty()) {
    return Value::MakeInt(as_int);
  }
  end = nullptr;
  double as_double = std::strtod(text.c_str(), &end);
  if (end != nullptr && *end == '\0' && !text.empty()) {
    return Value::MakeDouble(as_double);
  }
  return Value::MakeString(text);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

/// Loads `key,value` lines into a sparse vector, or `i,j,value` lines
/// into a sparse matrix when `matrix` is set.
Value LoadCsv(const std::string& path, bool matrix) {
  std::ifstream in(path);
  if (!in) Die("cannot open " + path);
  ValueVec rows;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    size_t expected = matrix ? 3 : 2;
    if (fields.size() != expected) {
      Die(path + ":" + std::to_string(lineno) + ": expected " +
          std::to_string(expected) + " fields");
    }
    Value key = matrix ? Value::MakeTuple({ParseScalar(fields[0]),
                                           ParseScalar(fields[1])})
                       : ParseScalar(fields[0]);
    rows.push_back(Value::MakePair(key, ParseScalar(fields.back())));
  }
  return Value::MakeBag(std::move(rows));
}

struct NameValue {
  std::string name;
  std::string value;
};

NameValue SplitBinding(const std::string& arg) {
  size_t eq = arg.find('=');
  if (eq == std::string::npos) Die("expected NAME=VALUE, got " + arg);
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/// Strict numeric flag parsing: a fault rate silently read as 0 would
/// turn an injection experiment into a fault-free run, so garbage dies.
double ParseDoubleFlag(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0') {
    Die(flag + " expects a number, got '" + text + "'");
  }
  return v;
}

long long ParseIntFlag(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    Die(flag + " expects an integer, got '" + text + "'");
  }
  return v;
}

/// Parses "S:P" or "S:P:I" colon-separated small integers.
std::vector<int> SplitColonInts(const std::string& arg, size_t min_fields,
                                size_t max_fields) {
  std::vector<int> out;
  std::string field;
  std::istringstream in(arg);
  while (std::getline(in, field, ':')) {
    char* end = nullptr;
    long v = std::strtol(field.c_str(), &end, 10);
    if (field.empty() || end == nullptr || *end != '\0') {
      Die("expected colon-separated integers, got " + arg);
    }
    out.push_back(static_cast<int>(v));
  }
  if (out.size() < min_fields || out.size() > max_fields) {
    Die("expected STAGE:PARTITION" +
        std::string(max_fields > 2 ? "[:INPUT]" : "") + ", got " + arg);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  diablo::Bindings inputs;
  std::vector<std::string> prints;
  diablo::CompileOptions compile_options;
  diablo::runtime::EngineConfig engine_config;
  diablo::RunOptions run_options;
  bool show_target = false, plan_report = false, use_reference = false;
  bool use_local = false, explain_analyze = false;
  bool partitions_set = false;
  std::string trace_out, profile_out, profile_in;
  std::string metrics_out, events_out;
  int dist_workers = 0;
  bool chaos_seed_set = false;
  diablo::dist::DistConfig dist_config;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Die(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--scalar") {
      NameValue nv = SplitBinding(next());
      inputs[nv.name] = ParseScalar(nv.value);
    } else if (arg == "--vector") {
      NameValue nv = SplitBinding(next());
      inputs[nv.name] = LoadCsv(nv.value, /*matrix=*/false);
    } else if (arg == "--matrix") {
      NameValue nv = SplitBinding(next());
      inputs[nv.name] = LoadCsv(nv.value, /*matrix=*/true);
    } else if (arg == "--print") {
      prints.push_back(next());
    } else if (arg == "--target") {
      show_target = true;
    } else if (arg == "--plan-report") {
      plan_report = true;
    } else if (arg == "--explain-analyze") {
      explain_analyze = true;
    } else if (arg == "--trace-out" || arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.size() > 12 ? arg.substr(12) : next();
    } else if (arg == "--profile-out" ||
               arg.rfind("--profile-out=", 0) == 0) {
      profile_out = arg.size() > 14 ? arg.substr(14) : next();
    } else if (arg == "--profile-in" ||
               arg.rfind("--profile-in=", 0) == 0) {
      profile_in = arg.size() > 13 ? arg.substr(13) : next();
    } else if (arg == "--metrics-out" ||
               arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.size() > 14 ? arg.substr(14) : next();
    } else if (arg == "--events-out" ||
               arg.rfind("--events-out=", 0) == 0) {
      events_out = arg.size() > 13 ? arg.substr(13) : next();
    } else if (arg == "--no-skew") {
      engine_config.skew.mitigate = false;
    } else if (arg == "--no-trace") {
      engine_config.tracing = false;
    } else if (arg == "--no-fusion") {
      engine_config.fuse_narrow = false;
    } else if (arg == "--no-hash-agg") {
      engine_config.hash_aggregation = false;
    } else if (arg == "--no-pool") {
      engine_config.persistent_pool = false;
    } else if (arg == "--no-columnar") {
      engine_config.columnar = false;
    } else if (arg == "--partitions") {
      engine_config.num_partitions = std::atoi(next().c_str());
      partitions_set = true;
    } else if (arg == "--workers") {
      engine_config.cluster.num_workers = std::atoi(next().c_str());
    } else if (arg == "--threads") {
      engine_config.host_threads =
          static_cast<int>(ParseIntFlag(arg, next()));
    } else if (arg == "--broadcast-mb") {
      engine_config.broadcast_join_threshold_bytes =
          std::atoll(next().c_str()) << 20;
    } else if (arg == "--serialize-shuffles") {
      engine_config.serialize_shuffles = true;
    } else if (arg == "--fault-seed") {
      engine_config.faults.seed =
          static_cast<uint64_t>(ParseIntFlag(arg, next()));
    } else if (arg == "--fail-rate") {
      engine_config.faults.task_failure_rate = ParseDoubleFlag(arg, next());
    } else if (arg == "--straggler-rate") {
      engine_config.faults.straggler_rate = ParseDoubleFlag(arg, next());
    } else if (arg == "--corrupt-rate") {
      engine_config.faults.corrupt_shuffle_rate = ParseDoubleFlag(arg, next());
    } else if (arg == "--max-attempts") {
      engine_config.faults.max_task_attempts =
          static_cast<int>(ParseIntFlag(arg, next()));
    } else if (arg == "--kill") {
      std::vector<int> sp = SplitColonInts(next(), 2, 2);
      engine_config.faults.kill_tasks.push_back({sp[0], sp[1]});
    } else if (arg == "--lose") {
      std::vector<int> sp = SplitColonInts(next(), 2, 3);
      engine_config.faults.lose_partitions.push_back(
          {sp[0], sp[1], sp.size() > 2 ? sp[2] : 0});
    } else if (arg == "--tiled") {
      run_options.tiled_arrays.insert(next());
    } else if (arg == "--tile-rows") {
      run_options.tile_config.tile_rows = std::atoll(next().c_str());
    } else if (arg == "--tile-cols") {
      run_options.tile_config.tile_cols = std::atoll(next().c_str());
    } else if (arg == "--dist-workers") {
      dist_workers = static_cast<int>(ParseIntFlag(arg, next()));
      if (dist_workers <= 0) Die("--dist-workers expects a positive count");
    } else if (arg == "--dist-heartbeat-ms") {
      dist_config.heartbeat_ms = static_cast<int>(ParseIntFlag(arg, next()));
    } else if (arg == "--dist-missed-beats") {
      dist_config.missed_beats = static_cast<int>(ParseIntFlag(arg, next()));
    } else if (arg == "--dist-deadline-ms") {
      dist_config.task_deadline_ms =
          static_cast<int>(ParseIntFlag(arg, next()));
    } else if (arg == "--dist-max-task-retries") {
      dist_config.max_task_retries =
          static_cast<int>(ParseIntFlag(arg, next()));
    } else if (arg == "--dist-max-respawns") {
      dist_config.max_respawns = static_cast<int>(ParseIntFlag(arg, next()));
    } else if (arg == "--dist-stall") {
      std::vector<int> wm = SplitColonInts(next(), 2, 2);
      dist_config.stall_worker = wm[0];
      dist_config.stall_ms = wm[1];
    } else if (arg == "--dist-verbose") {
      dist_config.verbose = true;
    } else if (arg == "--chaos-kill") {
      std::vector<int> sw = SplitColonInts(next(), 2, 3);
      dist_config.chaos.kills.push_back(
          {sw[0], sw[1], sw.size() > 2 ? sw[2] : 0});
    } else if (arg == "--chaos-kill-rate") {
      dist_config.chaos.kill_rate = ParseDoubleFlag(arg, next());
    } else if (arg == "--chaos-seed") {
      dist_config.chaos.seed =
          static_cast<uint64_t>(ParseIntFlag(arg, next()));
      chaos_seed_set = true;
    } else if (arg == "--no-opt") {
      compile_options.enable_optimizer = false;
    } else if (arg == "--local") {
      use_local = true;
    } else if (arg == "--reference") {
      use_reference = true;
    } else if (arg.rfind("--", 0) == 0) {
      Die("unknown option " + arg);
    } else if (program_path.empty()) {
      program_path = arg;
    } else {
      Die("multiple program files given");
    }
  }
  if (program_path.empty()) {
    Die("usage: diablo_run PROGRAM.diablo [options]; see the file header");
  }

  std::string source = ReadFile(program_path);
  // Provenance file name: the program's basename, as it should read in
  // "[pagerank.diablo:12:3]" stage annotations.
  {
    size_t slash = program_path.find_last_of('/');
    run_options.program_name = slash == std::string::npos
                                   ? program_path
                                   : program_path.substr(slash + 1);
  }

  // All output lines are buffered and emitted only after every lookup
  // succeeded: an error produces the stderr diagnostic and nothing else,
  // never a partial result a pipeline could mistake for a complete one.
  std::vector<std::string> lines;
  auto format_outputs = [&prints, &lines](auto&& get_scalar,
                                          auto&& get_array) -> Status {
    for (const std::string& name : prints) {
      auto scalar = get_scalar(name);
      if (scalar.ok()) {
        lines.push_back(name + " = " + scalar->ToString());
        continue;
      }
      auto array = get_array(name);
      if (!array.ok()) return array.status();
      lines.push_back(name + " = " + array->ToString());
    }
    return Status::OK();
  };
  auto emit = [&lines] {
    for (const std::string& line : lines) std::printf("%s\n", line.c_str());
  };

  if (use_reference) {
    auto ref = diablo::RunReference(source, inputs);
    if (!ref.ok()) DieStatus(ref.status());
    Status st = format_outputs(
        [&](const std::string& n) { return (*ref)->GetScalar(n); },
        [&](const std::string& n) { return (*ref)->GetArray(n); });
    if (!st.ok()) DieStatus(st);
    emit();
    return 0;
  }

  auto compiled = diablo::Compile(source, compile_options);
  if (!compiled.ok()) {
    if (compiled.status().code() == StatusCode::kRestrictionViolation) {
      // Rejected by Definition 3.1: show the analyzer's structured
      // diagnostics (codes, carets, race witnesses) instead of the
      // one-line summary, so the user sees *why* the loop races.
      auto parsed = diablo::parser::ParseProgram(source);
      if (parsed.ok()) {
        diablo::ast::Program canon =
            diablo::analysis::CanonicalizeIncrements(parsed.value());
        std::vector<diablo::analysis::Diagnostic> diags =
            diablo::analysis::LintLoops(canon);
        // Proven semantic errors (D2xx) reject programs too; render
        // their witnesses the same way as race witnesses.
        for (diablo::analysis::Diagnostic& d :
             diablo::analysis::AnalyzeProgram(canon).diagnostics) {
          diags.push_back(std::move(d));
        }
        for (diablo::analysis::Diagnostic& d :
             diablo::analysis::LintMergeOperators(canon)) {
          diags.push_back(std::move(d));
        }
        diablo::analysis::SortAndDedupe(&diags);
        std::string rendered = diablo::analysis::RenderTextAll(
            diags, source, program_path);
        if (!rendered.empty()) {
          std::fprintf(stderr, "%s", rendered.c_str());
          std::exit(3);
        }
      }
    }
    DieStatus(compiled.status());
  }
  if (show_target) {
    std::printf("=== target ===\n%s\n", compiled->TargetToString().c_str());
  }

  if (use_local) {
    auto local = diablo::RunLocal(*compiled, inputs);
    if (!local.ok()) DieStatus(local.status());
    Status st = format_outputs(
        [&](const std::string& n) { return (*local)->GetScalar(n); },
        [&](const std::string& n) { return (*local)->GetArray(n); });
    if (!st.ok()) DieStatus(st);
    emit();
    return 0;
  }

  // Telemetry sinks (stack-allocated: both outlive the engine and the
  // coordinator, which borrow pointers). Wired in only when an output
  // was requested, so runs without the flags take the null fast paths.
  diablo::runtime::MetricsRegistry registry;
  diablo::runtime::EventLog events;
  if (!metrics_out.empty()) engine_config.registry = &registry;
  if (!events_out.empty()) {
    engine_config.events = &events;
    dist_config.events = &events;
  }

  std::unique_ptr<diablo::dist::Coordinator> coordinator;
  if (dist_workers > 0) {
    dist_config.num_workers = dist_workers;
    // The chaos schedule defaults to the fault seed so one --fault-seed
    // flag drives both oracles; --chaos-seed overrides.
    if (!chaos_seed_set) dist_config.chaos.seed = engine_config.faults.seed;
    coordinator = std::make_unique<diablo::dist::Coordinator>(dist_config);
    engine_config.remote = coordinator.get();
    // Real SIGKILLs feed the lineage recovery path: the next stage
    // rebuilds the dead worker's partitions via recompute_many.
    engine_config.dist_lose_on_kill = true;
    // Effective seeds, so any chaos run can be replayed exactly:
    // re-running with these values reproduces the kill schedule.
    std::fprintf(stderr,
                 "diablo_run: dist workers=%d chaos seed %llu "
                 "(fault seed %llu)\n",
                 dist_workers,
                 static_cast<unsigned long long>(dist_config.chaos.seed),
                 static_cast<unsigned long long>(engine_config.faults.seed));
  } else if (dist_config.chaos.enabled()) {
    Die("--chaos-kill/--chaos-kill-rate require --dist-workers");
  }

  // Profile feedback (--profile-in): the parsed profile must outlive the
  // run (RunOptions::profile is a borrowed pointer). The partition count
  // is a plan choice too: when --partitions was not given explicitly, let
  // the measured row counts of the prior run size the partitioning.
  std::unique_ptr<diablo::runtime::ProfileData> profile;
  bool partitions_recommended = false;
  if (!profile_in.empty()) {
    auto parsed_profile =
        diablo::runtime::ProfileData::Parse(ReadFile(profile_in));
    if (!parsed_profile.ok()) DieStatus(parsed_profile.status());
    profile = std::make_unique<diablo::runtime::ProfileData>(
        std::move(parsed_profile.value()));
    run_options.profile = profile.get();
    if (!partitions_set) {
      int recommended = diablo::runtime::RecommendPartitions(
          *profile, engine_config.cluster.num_workers,
          engine_config.num_partitions);
      if (recommended != engine_config.num_partitions) {
        std::fprintf(stderr,
                     "diablo_run: profile feedback: partitions %d -> %d\n",
                     engine_config.num_partitions, recommended);
        engine_config.num_partitions = recommended;
        partitions_recommended = true;
      }
    }
  }

  diablo::runtime::Engine engine(engine_config);
  if (partitions_recommended) engine.RecordCostDecision();
  auto run = diablo::Run(*compiled, &engine, inputs, run_options);
  if (!run.ok()) DieStatus(run.status());

  Status st = format_outputs(
      [&](const std::string& n) { return run->Scalar(n); },
      [&](const std::string& n) { return run->Array(n); });
  if (!st.ok()) DieStatus(st);
  emit();

  if (plan_report) {
    const diablo::runtime::Metrics& metrics = engine.metrics();
    std::printf("=== stages ===\n%s", metrics.Report().c_str());
    std::printf("simulated cluster time: %.4f s (%d workers)\n",
                metrics.SimulatedSeconds(engine_config.cluster),
                engine_config.cluster.num_workers);
    if (engine_config.faults.enabled()) {
      std::printf(
          "fault recovery: attempts=%lld recomputed_partitions=%lld "
          "recovery=%.4f s (fault-free time: %.4f s)\n",
          static_cast<long long>(metrics.total_attempts()),
          static_cast<long long>(metrics.total_recomputed_partitions()),
          metrics.total_recovery_seconds(),
          metrics.SimulatedFaultFreeSeconds(engine_config.cluster));
    }
    if (coordinator != nullptr) {
      std::printf(
          "dist backend: tasks=%lld retries=%lld workers_lost=%lld "
          "chaos_kills=%d respawns=%d\n",
          static_cast<long long>(metrics.total_dist_tasks()),
          static_cast<long long>(metrics.total_dist_retries()),
          static_cast<long long>(metrics.total_dist_workers_lost()),
          coordinator->chaos_kills(), coordinator->respawns_used());
    }
  }

  if (explain_analyze || !trace_out.empty() || !profile_out.empty()) {
    std::vector<diablo::runtime::TraceSpan> spans;
    if (engine.trace() != nullptr) spans = engine.trace()->Snapshot();
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) Die("cannot write " + trace_out);
      diablo::runtime::WriteChromeTrace(spans, out);
      std::fprintf(stderr, "wrote Chrome trace (%zu spans) to %s\n",
                   spans.size(), trace_out.c_str());
    }
    if (!profile_out.empty()) {
      std::ofstream out(profile_out);
      if (!out) Die("cannot write " + profile_out);
      diablo::runtime::WriteProfileJson(engine.metrics(),
                                        engine_config.cluster, spans,
                                        run_options.program_name, out);
      std::fprintf(stderr, "wrote profile to %s\n", profile_out.c_str());
    }
    if (explain_analyze) {
      std::ostringstream report;
      diablo::runtime::WriteExplainAnalyze(engine.metrics(),
                                           engine_config.cluster, spans,
                                           report);
      std::printf("%s", report.str().c_str());
    }
  }

  if (!metrics_out.empty()) {
    // Run-level rollups next to the per-stage series the engine fed in
    // during the run.
    const diablo::runtime::Metrics& metrics = engine.metrics();
    registry.GaugeMax("diablo_run_peak_rss_bytes",
                      static_cast<double>(metrics.max_peak_rss_bytes()));
    registry.GaugeMax(
        "diablo_run_accumulator_bytes_peak",
        static_cast<double>(metrics.max_accumulator_bytes_peak()));
    registry.CounterAdd("diablo_dist_tasks_total",
                        metrics.total_dist_tasks());
    registry.CounterAdd("diablo_dist_retries_total",
                        metrics.total_dist_retries());
    registry.CounterAdd("diablo_dist_workers_lost_total",
                        metrics.total_dist_workers_lost());
    if (coordinator != nullptr) {
      registry.CounterAdd("diablo_chaos_kills_total",
                          coordinator->chaos_kills());
      registry.CounterAdd("diablo_worker_respawns_total",
                          coordinator->respawns_used());
    }
    std::ofstream out(metrics_out);
    if (!out) Die("cannot write " + metrics_out);
    const bool as_json =
        metrics_out.size() >= 5 &&
        metrics_out.compare(metrics_out.size() - 5, 5, ".json") == 0;
    if (as_json) {
      registry.WriteJson(out);
    } else {
      registry.WritePrometheus(out);
    }
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!events_out.empty()) {
    std::ofstream out(events_out);
    if (!out) Die("cannot write " + events_out);
    events.WriteJsonl(out);
    std::fprintf(stderr, "wrote %lld events to %s\n",
                 static_cast<long long>(events.size()), events_out.c_str());
  }
  return 0;
}
