// diablo_run: compile and execute a loop-language program from a file,
// binding inputs from the command line or from CSV files, and print the
// requested outputs.
//
// Usage:
//   diablo_run PROGRAM.diablo [options]
//
// Options:
//   --scalar NAME=VALUE      bind a scalar input (int, double, bool or
//                            quoted string, inferred from the spelling)
//   --vector NAME=FILE.csv   bind a sparse vector: each line `key,value`
//   --matrix NAME=FILE.csv   bind a sparse matrix: each line `i,j,value`
//   --print NAME             print a scalar or array output (repeatable)
//   --target                 print the translated target code
//   --plan-report            print the engine stage report after the run
//   --partitions N           engine partitions (default 8)
//   --workers N              simulated cluster workers (default 4)
//   --broadcast-mb N         enable broadcast joins for arrays <= N MB
//   --tiled NAME             store the named matrix as packed tiles (§5;
//                            repeatable)
//   --tile-rows R            tile rows (default 32)
//   --tile-cols C            tile columns (default 32)
//   --no-opt                 disable the comprehension optimizer
//   --local                  run on the single-process local algebra
//                            backend instead of the distributed engine
//   --reference              run the sequential reference interpreter
//                            instead of the distributed engine
//
// Example:
//   diablo_run wordcount.diablo --vector words=words.csv --print C

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "diablo/diablo.h"

namespace {

using diablo::runtime::Value;
using diablo::runtime::ValueVec;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "diablo_run: %s\n", message.c_str());
  std::exit(1);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) Die("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses a literal: bool, int, double, or quoted/bare string.
Value ParseScalar(const std::string& text) {
  if (text == "true") return Value::MakeBool(true);
  if (text == "false") return Value::MakeBool(false);
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    return Value::MakeString(text.substr(1, text.size() - 2));
  }
  char* end = nullptr;
  long long as_int = std::strtoll(text.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !text.empty()) {
    return Value::MakeInt(as_int);
  }
  end = nullptr;
  double as_double = std::strtod(text.c_str(), &end);
  if (end != nullptr && *end == '\0' && !text.empty()) {
    return Value::MakeDouble(as_double);
  }
  return Value::MakeString(text);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

/// Loads `key,value` lines into a sparse vector, or `i,j,value` lines
/// into a sparse matrix when `matrix` is set.
Value LoadCsv(const std::string& path, bool matrix) {
  std::ifstream in(path);
  if (!in) Die("cannot open " + path);
  ValueVec rows;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    size_t expected = matrix ? 3 : 2;
    if (fields.size() != expected) {
      Die(path + ":" + std::to_string(lineno) + ": expected " +
          std::to_string(expected) + " fields");
    }
    Value key = matrix ? Value::MakeTuple({ParseScalar(fields[0]),
                                           ParseScalar(fields[1])})
                       : ParseScalar(fields[0]);
    rows.push_back(Value::MakePair(key, ParseScalar(fields.back())));
  }
  return Value::MakeBag(std::move(rows));
}

struct NameValue {
  std::string name;
  std::string value;
};

NameValue SplitBinding(const std::string& arg) {
  size_t eq = arg.find('=');
  if (eq == std::string::npos) Die("expected NAME=VALUE, got " + arg);
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  diablo::Bindings inputs;
  std::vector<std::string> prints;
  diablo::CompileOptions compile_options;
  diablo::runtime::EngineConfig engine_config;
  diablo::RunOptions run_options;
  bool show_target = false, plan_report = false, use_reference = false;
  bool use_local = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Die(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--scalar") {
      NameValue nv = SplitBinding(next());
      inputs[nv.name] = ParseScalar(nv.value);
    } else if (arg == "--vector") {
      NameValue nv = SplitBinding(next());
      inputs[nv.name] = LoadCsv(nv.value, /*matrix=*/false);
    } else if (arg == "--matrix") {
      NameValue nv = SplitBinding(next());
      inputs[nv.name] = LoadCsv(nv.value, /*matrix=*/true);
    } else if (arg == "--print") {
      prints.push_back(next());
    } else if (arg == "--target") {
      show_target = true;
    } else if (arg == "--plan-report") {
      plan_report = true;
    } else if (arg == "--partitions") {
      engine_config.num_partitions = std::atoi(next().c_str());
    } else if (arg == "--workers") {
      engine_config.cluster.num_workers = std::atoi(next().c_str());
    } else if (arg == "--broadcast-mb") {
      engine_config.broadcast_join_threshold_bytes =
          std::atoll(next().c_str()) << 20;
    } else if (arg == "--tiled") {
      run_options.tiled_arrays.insert(next());
    } else if (arg == "--tile-rows") {
      run_options.tile_config.tile_rows = std::atoll(next().c_str());
    } else if (arg == "--tile-cols") {
      run_options.tile_config.tile_cols = std::atoll(next().c_str());
    } else if (arg == "--no-opt") {
      compile_options.enable_optimizer = false;
    } else if (arg == "--local") {
      use_local = true;
    } else if (arg == "--reference") {
      use_reference = true;
    } else if (arg.rfind("--", 0) == 0) {
      Die("unknown option " + arg);
    } else if (program_path.empty()) {
      program_path = arg;
    } else {
      Die("multiple program files given");
    }
  }
  if (program_path.empty()) {
    Die("usage: diablo_run PROGRAM.diablo [options]; see the file header");
  }

  std::string source = ReadFile(program_path);

  if (use_reference) {
    auto ref = diablo::RunReference(source, inputs);
    if (!ref.ok()) Die(ref.status().ToString());
    for (const std::string& name : prints) {
      auto scalar = (*ref)->GetScalar(name);
      if (scalar.ok()) {
        std::printf("%s = %s\n", name.c_str(), scalar->ToString().c_str());
        continue;
      }
      auto array = (*ref)->GetArray(name);
      if (!array.ok()) Die(array.status().ToString());
      std::printf("%s = %s\n", name.c_str(), array->ToString().c_str());
    }
    return 0;
  }

  auto compiled = diablo::Compile(source, compile_options);
  if (!compiled.ok()) Die(compiled.status().ToString());
  if (show_target) {
    std::printf("=== target ===\n%s\n", compiled->TargetToString().c_str());
  }

  if (use_local) {
    auto local = diablo::RunLocal(*compiled, inputs);
    if (!local.ok()) Die(local.status().ToString());
    for (const std::string& name : prints) {
      auto scalar = (*local)->GetScalar(name);
      if (scalar.ok()) {
        std::printf("%s = %s\n", name.c_str(), scalar->ToString().c_str());
        continue;
      }
      auto array = (*local)->GetArray(name);
      if (!array.ok()) Die(array.status().ToString());
      std::printf("%s = %s\n", name.c_str(), array->ToString().c_str());
    }
    return 0;
  }

  diablo::runtime::Engine engine(engine_config);
  auto run = diablo::Run(*compiled, &engine, inputs, run_options);
  if (!run.ok()) Die(run.status().ToString());

  for (const std::string& name : prints) {
    auto scalar = run->Scalar(name);
    if (scalar.ok()) {
      std::printf("%s = %s\n", name.c_str(), scalar->ToString().c_str());
      continue;
    }
    auto array = run->Array(name);
    if (!array.ok()) Die(array.status().ToString());
    std::printf("%s = %s\n", name.c_str(), array->ToString().c_str());
  }
  if (plan_report) {
    std::printf("=== stages ===\n%s", engine.metrics().Report().c_str());
    std::printf("simulated cluster time: %.4f s (%d workers)\n",
                engine.metrics().SimulatedSeconds(engine_config.cluster),
                engine_config.cluster.num_workers);
  }
  return 0;
}
