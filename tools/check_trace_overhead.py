#!/usr/bin/env python3
"""Gate the tracing overhead from one google-benchmark JSON run.

Usage:
    check_trace_overhead.py BENCH.json [--threshold PCT] [--prefix NAME]

Pairs up the trace:0 / trace:1 variants of each benchmark matched by
--prefix (default: BM_ReduceByKeyHotTraced, the AB8 gate pair) and
fails (exit 1) when the traced variant is more than --threshold percent
(default: 5) slower than the untraced one. Compares cpu_time medians by
default — tracing overhead is CPU work (span appends), and cpu_time is
robust against a loaded CI machine; pass --metric real_time to gate on
wall clock instead. Run the benchmark with --benchmark_repetitions and
--benchmark_enable_random_interleaving=true so the compared medians are
free of run-order warmup bias.

Stdlib only; runs on any python3.
"""

import argparse
import json
import re
import sys


class SchemaMismatch(Exception):
    """The JSON is not a google-benchmark report we understand."""


def load_times(path, prefixes, metric):
    """(base name, trace flag) -> `metric`, preferring _median entries."""
    with open(path) as f:
        doc = json.load(f)
    benchmarks = doc.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise SchemaMismatch(f"{path}: 'benchmarks' is not a list")
    times = {}
    for i, bench in enumerate(benchmarks):
        if not isinstance(bench, dict) or "name" not in bench:
            raise SchemaMismatch(
                f"{path}: benchmarks[{i}] is not an object with a 'name' key")
        name = bench["name"]
        if not any(name.startswith(p) for p in prefixes):
            continue
        run_type = bench.get("run_type", "iteration")
        aggregate = bench.get("aggregate_name", "")
        if run_type == "aggregate" and aggregate != "median":
            continue
        m = re.search(r"/trace:([01])", name)
        if not m:
            continue
        base = name[:m.start()] + name[m.end():]
        base = re.sub(r"_median$", "", base)
        key = (base, m.group(1) == "1")
        # Missing/renamed metric keys mean the producer changed its
        # report format; say so instead of a KeyError traceback.
        if metric not in bench:
            raise SchemaMismatch(
                f"{path}: benchmark '{name}' has no '{metric}' key "
                "(renamed or non-benchmark entry?)")
        try:
            value = float(bench[metric])
        except (TypeError, ValueError):
            raise SchemaMismatch(
                f"{path}: benchmark '{name}' has non-numeric "
                f"{metric} {bench[metric]!r}")
        # Aggregates (median) win over raw iterations when both exist.
        if run_type == "aggregate" or key not in times:
            times[key] = value
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max allowed tracing overhead in percent "
                             "(default 5)")
    parser.add_argument("--prefix", action="append", default=None,
                        help="benchmark name prefix to gate on; repeatable "
                             "(default: BM_ReduceByKeyHotTraced)")
    parser.add_argument("--metric", choices=["cpu_time", "real_time"],
                        default="cpu_time",
                        help="benchmark field to compare (default cpu_time)")
    args = parser.parse_args()
    prefixes = args.prefix or ["BM_ReduceByKeyHotTraced"]

    try:
        times = load_times(args.bench_json, prefixes, args.metric)
    except SchemaMismatch as e:
        print(f"ERROR: benchmark JSON schema mismatch: {e}", file=sys.stderr)
        return 2
    pairs = sorted({base for base, _ in times})
    failures = []
    checked = 0
    for base in pairs:
        off = times.get((base, False))
        on = times.get((base, True))
        if off is None or on is None:
            print(f"NOTE  {base}: missing trace:{'0' if off is None else '1'} "
                  "variant")
            continue
        checked += 1
        overhead_pct = (on - off) / off * 100.0
        verdict = "OK"
        if overhead_pct > args.threshold:
            verdict = "FAIL"
            failures.append(base)
        print(f"{verdict:5} {base}: untraced {off:.0f} ns, "
              f"traced {on:.0f} ns ({overhead_pct:+.1f}%)")

    if checked == 0:
        print(f"ERROR: no trace:0/trace:1 pairs matched prefixes {prefixes}",
              file=sys.stderr)
        return 1
    if failures:
        print(f"FAILED: tracing overhead above {args.threshold:.0f}% on: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"All {checked} pair(s) within {args.threshold:.0f}% tracing "
          "overhead.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
