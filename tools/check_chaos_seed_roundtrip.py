#!/usr/bin/env python3
"""Checks that a printed chaos seed reproduces its kill schedule.

diablo_run prints the effective chaos seed on stderr for every
--dist-workers run:

    diablo_run: dist workers=N chaos seed S (fault seed F)

This script runs a program once with a rate-based chaos schedule (no
explicit seed), parses the printed seed, re-runs with --chaos-seed S,
and asserts that

  1. the second run kills the same workers at the same (stage, worker,
     after-results) coordinates (pids differ between runs and are
     ignored), and
  2. both runs produce byte-identical stdout.

Usage:
  check_chaos_seed_roundtrip.py <diablo_run> <program> [program args...]

Exits 0 on success, 1 on a reproduction failure, 2 on usage/run errors.
"""

import re
import subprocess
import sys

SEED_RE = re.compile(r"diablo_run: dist workers=\d+ chaos seed (\d+)")
KILL_RE = re.compile(
    r"diablo-dist: chaos kill worker (\d+) pid \d+ "
    r"\(stage (\d+), after (\d+) results\)")


def run(cmd):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        sys.exit(2)
    return proc


def kill_schedule(stderr):
    """Kill coordinates in order, with the run-specific pid stripped."""
    return [m.groups() for m in KILL_RE.finditer(stderr)]


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    base = argv[1:] + ["--dist-workers", "3", "--chaos-kill-rate", "0.02"]

    first = run(base)
    m = SEED_RE.search(first.stderr)
    if m is None:
        print("error: no 'chaos seed' line on stderr:", file=sys.stderr)
        print(first.stderr, file=sys.stderr)
        return 2
    seed = m.group(1)
    first_kills = kill_schedule(first.stderr)
    print(f"first run: seed {seed}, {len(first_kills)} chaos kill(s)")

    second = run(base + ["--chaos-seed", seed])
    second_kills = kill_schedule(second.stderr)

    ok = True
    if second_kills != first_kills:
        print("FAIL: kill schedule not reproduced", file=sys.stderr)
        print(f"  first:  {first_kills}", file=sys.stderr)
        print(f"  second: {second_kills}", file=sys.stderr)
        ok = False
    if second.stdout != first.stdout:
        print("FAIL: stdout differs between runs", file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print(f"OK: seed {seed} reproduced {len(first_kills)} kill(s) "
          "and identical output")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
