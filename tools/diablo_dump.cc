// diablo_dump: prints the translated target code (and optionally the
// physical plan) of a benchmark program or a program read from a file.
//
// Usage:
//   diablo_dump <benchmark-name>          e.g. diablo_dump kmeans
//   diablo_dump --file <path>             compile a .diablo source file
//   diablo_dump --no-opt <benchmark-name> skip the optimizer

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "diablo/diablo.h"
#include "plan/plan.h"
#include "plan/spark_emitter.h"
#include "workloads/programs.h"

namespace {

/// Prints the physical plan of every comprehension in an assignment,
/// planning against a state where every inferred array exists (empty).
/// With `spark` set, plans render as pseudo-Spark chains instead.
void DumpPlans(const diablo::CompiledProgram& compiled, bool spark) {
  diablo::runtime::Engine engine;
  std::map<std::string, diablo::runtime::Value> scalars;
  std::map<std::string, diablo::runtime::Dataset> arrays;
  for (const auto& [name, info] : compiled.vars) {
    if (info.is_array) arrays[name] = diablo::runtime::Dataset();
  }
  diablo::plan::ExecState state{&engine, &scalars, &arrays};
  std::function<void(const diablo::comp::CExprPtr&)> dump_expr =
      [&](const diablo::comp::CExprPtr& e) {
        if (e == nullptr) return;
        if (e->is<diablo::comp::CExpr::Nested>()) {
          auto plan = diablo::plan::BuildPlan(
              e->as<diablo::comp::CExpr::Nested>().comp, state);
          if (plan.ok()) {
            if (spark) {
              std::printf("%s\n",
                          diablo::plan::ToSparkLike(*plan).c_str());
            } else {
              std::printf("%s", plan->ToString().c_str());
            }
          } else {
            std::printf("plan error: %s\n",
                        plan.status().ToString().c_str());
          }
          return;
        }
        if (e->is<diablo::comp::CExpr::Merge>()) {
          dump_expr(e->as<diablo::comp::CExpr::Merge>().left);
          dump_expr(e->as<diablo::comp::CExpr::Merge>().right);
        }
      };
  std::function<void(const std::vector<diablo::comp::TargetStmtPtr>&)>
      dump_stmts = [&](const std::vector<diablo::comp::TargetStmtPtr>& stmts) {
        for (const auto& s : stmts) {
          if (s->is<diablo::comp::TargetStmt::Assign>()) {
            const auto& a = s->as<diablo::comp::TargetStmt::Assign>();
            std::printf("-- %s :=\n", a.var.c_str());
            dump_expr(a.value);
          } else if (s->is<diablo::comp::TargetStmt::While>()) {
            dump_stmts(s->as<diablo::comp::TargetStmt::While>().body);
          }
        }
      };
  dump_stmts(compiled.target.stmts);
}

}  // namespace

int main(int argc, char** argv) {
  diablo::CompileOptions options;
  std::string source;
  std::string name;
  bool spark = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--spark") {
      spark = true;
    } else if (arg == "--no-opt") {
      options.enable_optimizer = false;
    } else if (arg == "--file" && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    } else {
      name = arg;
    }
  }
  if (source.empty()) {
    if (name.empty()) {
      std::fprintf(stderr, "usage: diablo_dump [--no-opt] <name|--file f>\n");
      return 2;
    }
    source = diablo::bench::GetProgram(name).source;
  }
  std::printf("=== source ===\n%s\n", source.c_str());
  auto compiled = diablo::Compile(source, options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("=== target ===\n%s", compiled->TargetToString().c_str());
  std::printf(spark ? "=== pseudo-Spark ===\n" : "=== plans ===\n");
  DumpPlans(*compiled, spark);
  return 0;
}
