#!/usr/bin/env python3
"""End-to-end check of the cluster-telemetry pipeline over forked workers.

Runs a program twice — single-process, then --dist-workers 3 with a
deterministic chaos kill — with every telemetry sink enabled on the
distributed leg, and asserts:

  1. both runs print byte-identical stdout (telemetry must never touch
     results),
  2. the profile JSON passes check_trace_profile.py with at least two
     worker process lanes (spliced worker telemetry),
  3. the merged Chrome trace contains task spans on worker pids and the
     named process lanes,
  4. the event log passes check_events.py with the chaos kill, worker
     loss, and statement events on record, and
  5. the Prometheus export carries the distributed run counters.

Usage:
  check_dist_telemetry.py <diablo_run> <check_trace_profile.py>
                          <check_events.py> <outdir> <program>
                          [program args...]

Exits 0 on success (printing "OK: distributed telemetry ..."), 1 on a
telemetry failure, 2 on usage/run errors.
"""

import json
import os
import subprocess
import sys


def run(cmd):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        sys.exit(2)
    return proc


def fail(what):
    print(f"FAILED: {what}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 6:
        print(__doc__, file=sys.stderr)
        return 2
    runner, check_profile, check_events, outdir = argv[1:5]
    program_args = argv[5:]
    os.makedirs(outdir, exist_ok=True)
    trace = os.path.join(outdir, "trace.json")
    profile = os.path.join(outdir, "profile.json")
    metrics = os.path.join(outdir, "metrics.prom")
    events = os.path.join(outdir, "events.jsonl")

    local = run([runner] + program_args)
    dist = run([runner] + program_args + [
        "--dist-workers", "3", "--chaos-kill", "2:0",
        f"--trace-out={trace}", f"--profile-out={profile}",
        f"--metrics-out={metrics}", f"--events-out={events}"])
    if local.stdout != dist.stdout:
        fail("distributed stdout diverged from the single-process run")

    checker = subprocess.run(
        [sys.executable, check_profile, profile, "--require-tracing",
         "--min-worker-processes", "2"],
        capture_output=True, text=True)
    if checker.returncode != 0:
        fail(f"profile check: {checker.stderr.strip()}")

    with open(trace) as f:
        doc = json.load(f)
    task_pids = {e["pid"] for e in doc.get("traceEvents", [])
                 if e.get("ph") == "X"}
    if len({p for p in task_pids if p > 0}) < 2:
        fail(f"merged trace has no worker lanes (pids {sorted(task_pids)})")
    lane_names = {e["args"]["name"] for e in doc.get("traceEvents", [])
                  if e.get("ph") == "M" and e.get("name") == "process_name"}
    if "coordinator" not in lane_names:
        fail(f"merged trace lanes unnamed: {sorted(lane_names)}")

    checker = subprocess.run(
        [sys.executable, check_events, events,
         "--require-min", "chaos_kill=1",
         "--require-min", "worker_lost=1",
         "--require-min", "statement=1"],
        capture_output=True, text=True)
    if checker.returncode != 0:
        fail(f"event check: {checker.stderr.strip()}")

    with open(metrics) as f:
        prom = f.read()
    for needle in ("diablo_dist_tasks_total", "diablo_chaos_kills_total 1",
                   "diablo_run_peak_rss_bytes"):
        if needle not in prom:
            fail(f"Prometheus export missing '{needle}'")

    workers = len({p for p in task_pids if p > 0})
    print(f"OK: distributed telemetry — {workers} worker lane(s), "
          f"{len(lane_names)} named process lanes, chaos kill on record")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
