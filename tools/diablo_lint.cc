// diablo_lint: static analyzer for loop-language programs.
//
// Level 1 (loops) checks every parallelizable for-loop against the
// restrictions of Definition 3.1 and reports each violation as a stable
// diagnostic code (D001-D007) with a concrete two-iteration race witness
// when one exists in a small index domain, plus advisory lints
// (D101-D103) for accepted-but-suspicious shapes.
//
// Level 1.5 (abstract interpretation) runs the interval/constant/sign
// analysis and the merge-operator algebra checker, reporting proven
// semantic errors (D201 out-of-bounds write, D202 zero divisor, D203
// non-associative merge) with concrete witnesses.
//
// Level 2 (plans) compiles the program and plans every comprehension
// with the real planner, reporting the wide (shuffle) stages each
// statement runs with estimated shuffled bytes per row (P001/P002,
// typed ColumnSchema widths when inferred) and advisory lints for
// expensive or improvable plan shapes (P101-P105), plus interval-backed
// cost advisories (P201 key cardinality, P202 broadcast-join hint).
//
// Usage:
//   diablo_lint PROGRAM.diablo [options]
//
// Options:
//   --format=text|json   output format (default text)
//   --no-plan            skip the plan-level (level 2) analysis
//   --no-opt             plan-lint the unoptimized target code
//   --max-domain N       witness search domain per loop index (default 6)
//   --bytes-per-slot N   shuffled-bytes model for P001 (default 16)
//   --profile-in=FILE    a prior `diablo_run --profile-out` JSON: P001
//                        stage notes and the P201/P202 cost advisories
//                        report the measured shuffle bytes and key
//                        cardinality next to the static estimates
//                        (matched by provenance; stale profiles simply
//                        add no evidence). The JSON output schema is
//                        unchanged — evidence lands in the message text.
//
// Exit codes: 0 no error-severity diagnostics (warnings and notes are
// fine), 2 parse error, 3 error diagnostics reported, 4 translation
// error, 6 invalid argument, 7 unsupported feature, 1 CLI or I/O error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/loop_lint.h"
#include "analysis/merge_algebra.h"
#include "analysis/plan_lint.h"
#include "analysis/restrictions.h"
#include "diablo/diablo.h"
#include "parser/parser.h"

namespace {

using diablo::Status;
using diablo::StatusCode;
namespace analysis = diablo::analysis;

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kParseError:
      return 2;
    case StatusCode::kRestrictionViolation:
      return 3;
    case StatusCode::kTranslationError:
      return 4;
    case StatusCode::kRuntimeError:
    case StatusCode::kTaskLost:
      return 5;
    case StatusCode::kInvalidArgument:
      return 6;
    case StatusCode::kUnsupported:
      return 7;
    case StatusCode::kDistError:
      return 1;  // the linter never reaches the distributed backend
  }
  return 1;
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "diablo_lint: %s\n", message.c_str());
  std::exit(1);
}

[[noreturn]] void DieStatus(const Status& status) {
  std::string msg = status.ToString();
  size_t eol = msg.find('\n');
  if (eol != std::string::npos) msg.resize(eol);
  std::fprintf(stderr, "diablo_lint: %s\n", msg.c_str());
  std::exit(ExitCodeFor(status.code()));
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) Die("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  std::string profile_in;
  bool json = false;
  bool plan_level = true;
  diablo::CompileOptions compile_options;
  analysis::LoopLintOptions loop_options;
  analysis::PlanLintOptions plan_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Die(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--format=text" || arg == "--format=TEXT") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format") {
      std::string v = next();
      if (v == "json") {
        json = true;
      } else if (v == "text") {
        json = false;
      } else {
        Die("--format expects text or json, got " + v);
      }
    } else if (arg == "--no-plan") {
      plan_level = false;
    } else if (arg == "--no-opt") {
      compile_options.enable_optimizer = false;
    } else if (arg == "--max-domain") {
      loop_options.max_domain = std::atoi(next().c_str());
      if (loop_options.max_domain < 2) {
        Die("--max-domain must be at least 2");
      }
    } else if (arg == "--bytes-per-slot") {
      plan_options.bytes_per_slot = std::atoi(next().c_str());
      if (plan_options.bytes_per_slot < 1) {
        Die("--bytes-per-slot must be at least 1");
      }
    } else if (arg == "--profile-in" || arg.rfind("--profile-in=", 0) == 0) {
      profile_in = arg.size() > 13 ? arg.substr(13) : next();
    } else if (arg.rfind("--", 0) == 0) {
      Die("unknown option " + arg);
    } else if (program_path.empty()) {
      program_path = arg;
    } else {
      Die("multiple program files given");
    }
  }
  if (program_path.empty()) {
    Die("usage: diablo_lint PROGRAM.diablo [--format=text|json] "
        "[--no-plan] [--no-opt] [--max-domain N] [--bytes-per-slot N] "
        "[--profile-in FILE]");
  }

  std::string source = ReadFile(program_path);

  // Measured evidence (--profile-in): parsed once, matched against plan
  // nodes by provenance. The stage file names in a profile are the
  // program basename the profiled run used, so match on ours.
  std::unique_ptr<diablo::runtime::ProfileData> profile;
  if (!profile_in.empty()) {
    auto parsed_profile =
        diablo::runtime::ProfileData::Parse(ReadFile(profile_in));
    if (!parsed_profile.ok()) DieStatus(parsed_profile.status());
    profile = std::make_unique<diablo::runtime::ProfileData>(
        std::move(parsed_profile.value()));
    plan_options.profile = profile.get();
    size_t slash = program_path.find_last_of('/');
    plan_options.profile_file = slash == std::string::npos
                                    ? program_path
                                    : program_path.substr(slash + 1);
  }

  auto parsed = diablo::parser::ParseProgram(source);
  if (!parsed.ok()) DieStatus(parsed.status());
  diablo::ast::Program canon =
      analysis::CanonicalizeIncrements(parsed.value());

  std::vector<analysis::Diagnostic> diags =
      analysis::LintLoops(canon, loop_options);

  // Level 1.5: abstract interpretation (D201/D202) and merge-operator
  // algebra (D203). The interval facts also feed the plan level below.
  analysis::AbsintResult absint = analysis::AnalyzeProgram(canon);
  diags.insert(diags.end(), absint.diagnostics.begin(),
               absint.diagnostics.end());
  for (analysis::Diagnostic& d : analysis::LintMergeOperators(canon)) {
    diags.push_back(std::move(d));
  }
  plan_options.int_scalars = &absint.int_scalars;

  // Level 2 only applies to programs the translator accepts; loop-level
  // errors already are the explanation of why it will not.
  if (plan_level && !analysis::HasErrors(diags)) {
    auto compiled = diablo::Compile(source, compile_options);
    if (!compiled.ok()) DieStatus(compiled.status());
    std::set<std::string> array_vars;
    for (const auto& [name, info] : compiled->vars) {
      if (info.is_array) array_vars.insert(name);
    }
    analysis::PlanLintResult plan_result =
        analysis::LintTargetProgram(compiled->target, array_vars,
                                    plan_options);
    diags.insert(diags.end(), plan_result.diagnostics.begin(),
                 plan_result.diagnostics.end());
  }
  analysis::SortAndDedupe(&diags);

  if (json) {
    std::printf("%s\n",
                analysis::RenderJsonAll(diags, program_path).c_str());
  } else {
    std::printf("%s", analysis::RenderTextAll(diags, source,
                                              program_path).c_str());
    std::printf("%d error(s), %d warning(s), %d note(s)\n",
                analysis::CountSeverity(diags,
                                        analysis::Severity::kError),
                analysis::CountSeverity(diags,
                                        analysis::Severity::kWarning),
                analysis::CountSeverity(diags,
                                        analysis::Severity::kNote));
  }
  return analysis::HasErrors(diags) ? 3 : 0;
}
