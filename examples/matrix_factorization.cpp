// Matrix factorization by gradient descent (§3.2, Figure 3.L): iterates
// the paper's one-step program, feeding P/Q back in, and reports the
// reconstruction error |R - P×Q| decreasing over the provided entries.

#include <cmath>
#include <cstdio>
#include <map>
#include <random>

#include "diablo/diablo.h"
#include "workloads/programs.h"

using diablo::runtime::Value;

namespace {

/// Root-mean-square error of P×Q against R's provided entries.
double Rmse(const Value& r, const Value& p, const Value& q, int64_t rank) {
  std::map<std::pair<int64_t, int64_t>, double> pv, qv;
  for (const Value& row : p.bag()) {
    pv[{row.tuple()[0].tuple()[0].AsInt(),
        row.tuple()[0].tuple()[1].AsInt()}] = row.tuple()[1].ToDouble();
  }
  for (const Value& row : q.bag()) {
    qv[{row.tuple()[0].tuple()[0].AsInt(),
        row.tuple()[0].tuple()[1].AsInt()}] = row.tuple()[1].ToDouble();
  }
  double total = 0;
  int64_t count = 0;
  for (const Value& row : r.bag()) {
    int64_t i = row.tuple()[0].tuple()[0].AsInt();
    int64_t j = row.tuple()[0].tuple()[1].AsInt();
    double pq = 0;
    for (int64_t k = 0; k < rank; ++k) pq += pv[{i, k}] * qv[{k, j}];
    double err = row.tuple()[1].ToDouble() - pq;
    total += err * err;
    ++count;
  }
  return count == 0 ? 0 : std::sqrt(total / static_cast<double>(count));
}

}  // namespace

int main() {
  constexpr int kSteps = 8;
  constexpr int64_t kRank = 2;
  const auto& spec = diablo::bench::GetProgram("matrix_factorization");
  std::mt19937_64 rng(5);
  diablo::Bindings inputs = spec.make_inputs(/*n=*/24, rng);
  // A slightly larger learning rate converges visibly in a few steps.
  inputs["a"] = Value::MakeDouble(0.01);

  auto program = diablo::Compile(spec.source);
  if (!program.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  Value p = inputs.at("P0"), q = inputs.at("Q0");
  std::printf("step  rmse(R, PxQ)\n");
  std::printf("  0   %.4f\n", Rmse(inputs.at("R"), p, q, kRank));
  for (int step = 1; step <= kSteps; ++step) {
    inputs["P0"] = p;
    inputs["Q0"] = q;
    inputs["P"] = p;
    inputs["Q"] = q;
    diablo::runtime::Engine engine;
    auto run = diablo::Run(*program, &engine, inputs);
    if (!run.ok()) {
      std::fprintf(stderr, "runtime error: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    p = *run->Array("P");
    q = *run->Array("Q");
    std::printf(" %2d   %.4f\n", step, Rmse(inputs.at("R"), p, q, kRank));
  }
  std::printf(
      "\nEach step executed the restriction-conforming program of §3.2\n"
      "(pq and err as matrices) as distributed joins and reduceByKeys.\n");
  return 0;
}
