// Packed (tiled) matrices — §5: pack a sparse matrix into dense tiles,
// multiply and merge at tile granularity, and compare the shuffle traffic
// of the fused zipPartitions-style merge against the naive coGroup merge.

#include <cstdio>
#include <random>

#include "runtime/array.h"
#include "tiles/tiles.h"
#include "workloads/workloads.h"

using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::Value;

int main() {
  constexpr int64_t kN = 64;
  diablo::tiles::TileConfig config{8, 8};
  std::mt19937_64 rng(3);

  Engine engine;
  Value a_bag = diablo::bench::RandomMatrix(kN, kN, rng);
  Value b_bag = diablo::bench::RandomMatrix(kN, kN, rng);
  Dataset a_sparse = engine.Parallelize(a_bag.bag());
  Dataset b_sparse = engine.Parallelize(b_bag.bag());

  auto a_tiled = diablo::tiles::Pack(engine, a_sparse, config);
  auto b_tiled = diablo::tiles::Pack(engine, b_sparse, config);
  if (!a_tiled.ok() || !b_tiled.ok()) {
    std::fprintf(stderr, "pack failed\n");
    return 1;
  }
  // Packing ends in a lazy tile-forming map; force it so TotalRows()
  // below counts tiles, not sparse source entries.
  a_tiled = engine.Force(*a_tiled);
  b_tiled = engine.Force(*b_tiled);
  if (!a_tiled.ok() || !b_tiled.ok()) {
    std::fprintf(stderr, "pack failed\n");
    return 1;
  }
  std::printf("packed %lldx%lld matrix into %lld tiles of %lldx%lld\n",
              static_cast<long long>(kN), static_cast<long long>(kN),
              static_cast<long long>(a_tiled->TotalRows()),
              static_cast<long long>(config.tile_rows),
              static_cast<long long>(config.tile_cols));

  // Tiled addition two ways: fused zip merge (no shuffle) vs coGroup.
  engine.metrics().Clear();
  auto zipped = diablo::tiles::ZipMergeAdd(engine, *a_tiled, *b_tiled);
  int64_t zip_bytes = engine.metrics().total_shuffle_bytes();
  int64_t zip_wide = engine.metrics().num_wide_stages();
  engine.metrics().Clear();
  auto cogrouped = diablo::tiles::CoGroupMergeAdd(engine, *a_tiled, *b_tiled);
  int64_t cg_bytes = engine.metrics().total_shuffle_bytes();
  int64_t cg_wide = engine.metrics().num_wide_stages();
  if (!zipped.ok() || !cogrouped.ok()) {
    std::fprintf(stderr, "merge failed\n");
    return 1;
  }
  std::printf("\ntiled addition:\n");
  std::printf("  zip merge (co-partitioned): %lld wide stages, %lld bytes "
              "shuffled\n",
              static_cast<long long>(zip_wide),
              static_cast<long long>(zip_bytes));
  std::printf("  coGroup merge:              %lld wide stages, %lld bytes "
              "shuffled\n",
              static_cast<long long>(cg_wide),
              static_cast<long long>(cg_bytes));

  // Tiled matrix multiplication.
  engine.metrics().Clear();
  auto product = diablo::tiles::TiledMatMul(engine, *a_tiled, *b_tiled,
                                            config);
  if (!product.ok()) {
    std::fprintf(stderr, "tiled multiply failed: %s\n",
                 product.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntiled multiply: %lld output tiles, %lld bytes shuffled\n",
              static_cast<long long>(product->TotalRows()),
              static_cast<long long>(engine.metrics().total_shuffle_bytes()));

  // Unpack a corner and print it.
  auto back = diablo::tiles::Unpack(engine, *product, config);
  if (back.ok()) {
    std::printf("product[0,0..3]:");
    const diablo::runtime::ValueVec rows = engine.Collect(*back).value();
    for (const Value& row : rows) {
      if (row.tuple()[0].tuple()[0].AsInt() == 0 &&
          row.tuple()[0].tuple()[1].AsInt() < 4) {
        std::printf(" %.1f", row.tuple()[1].ToDouble());
      }
    }
    std::printf("\n");
  }
  return 0;
}
