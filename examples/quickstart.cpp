// Quickstart: compile an array-based loop program and run it on the
// distributed engine.
//
//   $ ./quickstart
//
// The program is written exactly like the paper's listings: a sequential
// loop over a collection with an incremental update. DIABLO translates it
// to a distributed data-parallel plan (a filter + total reduction here)
// and executes it on the partitioned engine.

#include <cstdio>
#include <random>

#include "diablo/diablo.h"

using diablo::runtime::Value;
using diablo::runtime::ValueVec;

int main() {
  // ---------------------------------------------------------------------
  // 1. A loop-based program: conditional sum (Figure 3.A).
  // ---------------------------------------------------------------------
  const char* kConditionalSum = R"(
    var sum: double = 0.0;
    for v in V do
      if (v < 100.0)
        sum += v;
  )";

  // Host-side input: a sparse vector {(i, value)} with 100k random rows.
  std::mt19937_64 rng(1);
  ValueVec rows;
  for (int i = 0; i < 100000; ++i) {
    rows.push_back(Value::MakePair(
        Value::MakeInt(i),
        Value::MakeDouble(static_cast<double>(rng() % 200))));
  }
  diablo::Bindings inputs{{"V", Value::MakeBag(rows)}};

  // Compile: parse -> Definition 3.1 checks -> Figure 2 translation ->
  // normalization -> optimization.
  auto program = diablo::Compile(kConditionalSum);
  if (!program.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("=== translated target code ===\n%s\n",
              program->TargetToString().c_str());

  // Run on the engine (8 partitions by default).
  diablo::runtime::Engine engine;
  auto run = diablo::Run(*program, &engine, inputs);
  if (!run.ok()) {
    std::fprintf(stderr, "runtime error: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("conditional sum = %.1f\n", run->Scalar("sum")->ToDouble());

  // ---------------------------------------------------------------------
  // 2. A keyed aggregation: word count (Figure 3.D).
  // ---------------------------------------------------------------------
  const char* kWordCount = R"(
    var C: map[string,int] = map();
    for w in words do
      C[w] += 1;
  )";
  ValueVec words;
  const char* kWords[] = {"spark", "flink", "hadoop", "spark", "spark"};
  for (size_t i = 0; i < 5; ++i) {
    words.push_back(Value::MakePair(Value::MakeInt(static_cast<int64_t>(i)),
                                    Value::MakeString(kWords[i])));
  }
  diablo::runtime::Engine engine2;
  auto wc = diablo::CompileAndRun(kWordCount, &engine2,
                                  {{"words", Value::MakeBag(words)}});
  if (!wc.ok()) {
    std::fprintf(stderr, "error: %s\n", wc.status().ToString().c_str());
    return 1;
  }
  std::printf("word counts: %s\n", wc->Array("C")->ToString().c_str());

  // The engine tracked every stage; ask the cost model what this would
  // cost on a simulated 4-worker cluster.
  std::printf("\n=== engine stages (word count) ===\n%s",
              engine2.metrics().Report().c_str());
  std::printf("simulated cluster time: %.3f ms\n",
              engine2.metrics().SimulatedSeconds(
                  engine2.config().cluster) * 1e3);
  return 0;
}
