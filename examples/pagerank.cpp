// PageRank (Figure 3.J): the paper's loop-based PageRank translated by
// DIABLO, compared against the hand-written Spark-style implementation on
// the same RMAT graph. Prints the top-ranked vertices and the plan costs
// of both versions.

#include <algorithm>
#include <cstdio>
#include <random>

#include "diablo/diablo.h"
#include "workloads/harness.h"
#include "workloads/programs.h"
#include "workloads/workloads.h"

using diablo::runtime::Value;

int main() {
  const auto& spec = diablo::bench::GetProgram("pagerank");
  std::mt19937_64 rng(2020);
  // RMAT graph with 2^8 = 256 vertices and ~2560 edges.
  diablo::Bindings inputs = spec.make_inputs(/*scale=*/8, rng);
  inputs["num_steps"] = Value::MakeInt(3);

  std::printf("=== DIABLO source ===\n%s\n", spec.source.c_str());

  diablo::runtime::EngineConfig config;
  auto diablo_stats = diablo::bench::RunDiablo(spec, inputs, config);
  if (!diablo_stats.ok()) {
    std::fprintf(stderr, "DIABLO failed: %s\n",
                 diablo_stats.status().ToString().c_str());
    return 1;
  }
  auto hw_stats = diablo::bench::MeasureHandwritten(spec, inputs, config);
  if (!hw_stats.ok()) {
    std::fprintf(stderr, "hand-written failed: %s\n",
                 hw_stats.status().ToString().c_str());
    return 1;
  }

  // Top 5 vertices by rank.
  std::vector<std::pair<double, int64_t>> ranked;
  for (const Value& row : diablo_stats->output.bag()) {
    ranked.emplace_back(row.tuple()[1].ToDouble(), row.tuple()[0].AsInt());
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("top vertices by rank (3 steps):\n");
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::printf("  v%-4lld rank %.5f\n",
                static_cast<long long>(ranked[i].second), ranked[i].first);
  }

  std::printf("\n                    %12s %12s\n", "DIABLO", "hand-written");
  std::printf("shuffled stages:    %12lld %12lld\n",
              static_cast<long long>(diablo_stats->shuffles),
              static_cast<long long>(hw_stats->shuffles));
  std::printf("shuffled bytes:     %12lld %12lld\n",
              static_cast<long long>(diablo_stats->shuffle_bytes),
              static_cast<long long>(hw_stats->shuffle_bytes));
  std::printf("simulated seconds:  %12.4f %12.4f\n",
              diablo_stats->simulated_seconds, hw_stats->simulated_seconds);
  std::printf(
      "\nDIABLO's generated plan uses a triple join (graph x ranks x "
      "out-degrees)\nper step where the hand-written code uses one join — "
      "the gap the paper\nreports in Figure 3.J.\n");
  return 0;
}
