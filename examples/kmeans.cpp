// KMeans clustering (Figure 3.K): iterates the paper's one-step KMeans
// program, feeding each step's centroids into the next, and shows the
// centroids converging to the latent grid centers.

#include <cmath>
#include <cstdio>
#include <random>

#include "diablo/diablo.h"
#include "workloads/programs.h"
#include "workloads/workloads.h"

using diablo::runtime::Value;

namespace {

/// Mean distance from each centroid to its latent grid center
/// (i*2 + 1.5, j*2 + 1.5).
double MeanError(const Value& centroids, int grid) {
  double total = 0;
  int count = 0;
  for (const Value& row : centroids.bag()) {
    int64_t id = row.tuple()[0].AsInt();
    double cx = static_cast<double>(id / grid) * 2 + 1.5;
    double cy = static_cast<double>(id % grid) * 2 + 1.5;
    double dx = row.tuple()[1].tuple()[0].ToDouble() - cx;
    double dy = row.tuple()[1].tuple()[1].ToDouble() - cy;
    total += std::sqrt(dx * dx + dy * dy);
    ++count;
  }
  return count == 0 ? 0 : total / count;
}

}  // namespace

int main() {
  constexpr int kGrid = 4;
  constexpr int kSteps = 5;
  const auto& spec = diablo::bench::GetProgram("kmeans");
  std::mt19937_64 rng(7);
  diablo::Bindings inputs = spec.make_inputs(/*points=*/2000, rng);

  auto program = diablo::Compile(spec.source);
  if (!program.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  Value centroids = inputs.at("C");
  std::printf("step  mean-centroid-error\n");
  std::printf("  0   %.4f   (paper's initial (i*2+1.2, j*2+1.2))\n",
              MeanError(centroids, kGrid));
  for (int step = 1; step <= kSteps; ++step) {
    inputs["C"] = centroids;
    diablo::runtime::Engine engine;
    auto run = diablo::Run(*program, &engine, inputs);
    if (!run.ok()) {
      std::fprintf(stderr, "runtime error: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    centroids = *run->Array("C2");
    std::printf(" %2d   %.4f\n", step, MeanError(centroids, kGrid));
  }
  std::printf(
      "\nEach step ran the translated loop program as distributed joins +\n"
      "an argmin reduceByKey + a tuple-sum reduceByKey — the join-heavy\n"
      "plan the paper describes for DIABLO KMeans.\n");
  return 0;
}
