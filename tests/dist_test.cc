// Tests for the multi-process distributed backend (src/dist/): the
// CRC-framed wire protocol, control payload codecs, deterministic chaos
// schedules, task-slot marshalling, and the end-to-end invariant — a
// --dist-workers run forks real worker processes, survives real SIGKILLs
// via heartbeats, deadlines, re-dispatch and lineage recovery, and still
// produces results byte-identical to the single-process engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dist/chaos.h"
#include "dist/coordinator.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "runtime/engine.h"
#include "runtime/events.h"
#include "runtime/metrics_registry.h"
#include "runtime/serialize.h"
#include "runtime/trace.h"
#include "runtime/wave_io.h"

namespace diablo::dist {
namespace {

using runtime::ChainTally;
using runtime::Dataset;
using runtime::Engine;
using runtime::EngineConfig;
using runtime::HashedRow;
using runtime::HashedVec;
using runtime::Serialize;
using runtime::Value;
using runtime::ValueVec;
using runtime::WaveSlots;

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }
Value S(const std::string& v) { return Value::MakeString(v); }

// ------------------------------- wire ---------------------------------

TEST(WireTest, Crc32KnownAnswer) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(WireTest, FrameRoundTrip) {
  for (const std::string& payload :
       {std::string(), std::string("x"), std::string(1000, '\xff')}) {
    std::string wire;
    EncodeFrame(FrameType::kTaskResult, payload, &wire);
    ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());
    auto frame = DecodeFrame(wire);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, FrameType::kTaskResult);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(WireTest, TruncatedFrameRejectedAtEveryPrefix) {
  std::string wire;
  EncodeFrame(FrameType::kTask, "task payload bytes", &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    auto frame = DecodeFrame(wire.substr(0, len));
    EXPECT_FALSE(frame.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(WireTest, EveryBitFlipRejected) {
  std::string wire;
  EncodeFrame(FrameType::kHello, "hello payload", &wire);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      auto frame = DecodeFrame(flipped);
      // Any surviving decode must at least not silently change the
      // payload; for this frame every single-bit flip is caught.
      EXPECT_FALSE(frame.ok())
          << "bit " << bit << " of byte " << i << " flipped undetected";
    }
  }
}

TEST(WireTest, OversizedLengthPrefixFailsFast) {
  // Header that declares a 4 GiB payload: the reader must error out
  // without ever buffering anything near that.
  std::string wire;
  EncodeFrame(FrameType::kTask, "small", &wire);
  // Overwrite the length field (offset 8) with 0xFFFFFFFF.
  wire[8] = wire[9] = wire[10] = wire[11] = static_cast<char>(0xFF);
  FrameReader reader(/*max_frame_bytes=*/1024);
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  auto next = reader.Next(&frame);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("corrupt frame"), std::string::npos)
      << next.status().ToString();
}

TEST(WireTest, BadMagicUnknownTypeAndReservedRejected) {
  std::string good;
  EncodeFrame(FrameType::kHeartbeat, "", &good);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeFrame(bad_magic).ok());

  std::string bad_type = good;
  bad_type[4] = static_cast<char>(99);
  EXPECT_FALSE(DecodeFrame(bad_type).ok());

  std::string bad_reserved = good;
  bad_reserved[5] = 1;
  EXPECT_FALSE(DecodeFrame(bad_reserved).ok());

  std::string trailing = good + "z";
  EXPECT_FALSE(DecodeFrame(trailing).ok());
}

TEST(WireTest, IncrementalReaderReassemblesByteByByte) {
  std::string stream;
  EncodeFrame(FrameType::kTask, "first", &stream);
  EncodeFrame(FrameType::kTaskResult, std::string(300, 'r'), &stream);

  FrameReader reader;
  std::vector<Frame> frames;
  for (char c : stream) {
    reader.Feed(&c, 1);
    for (;;) {
      Frame frame;
      auto next = reader.Next(&frame);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!*next) break;
      frames.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kTask);
  EXPECT_EQ(frames[0].payload, "first");
  EXPECT_EQ(frames[1].type, FrameType::kTaskResult);
  EXPECT_EQ(frames[1].payload, std::string(300, 'r'));
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, ReaderErrorIsSticky) {
  std::string bad;
  EncodeFrame(FrameType::kHeartbeat, "beat", &bad);
  bad[12] ^= 0x01;  // corrupt the CRC field
  FrameReader reader;
  reader.Feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_FALSE(reader.Next(&frame).ok());
  // A pristine frame after the corruption must not resurrect the stream.
  std::string good;
  EncodeFrame(FrameType::kHeartbeat, "", &good);
  reader.Feed(good.data(), good.size());
  EXPECT_FALSE(reader.Next(&frame).ok());
}

// --------------------------- control payloads --------------------------

TEST(PayloadTest, HelloRoundTrip) {
  std::string payload =
      EncodeHelloPayload(7, 12345, 0xdeadbeefcafef00dull, 3.25e9);
  int worker_id = 0;
  int64_t pid = 0;
  uint64_t token = 0;
  double steady_now_us = 0;
  ASSERT_TRUE(
      DecodeHelloPayload(payload, &worker_id, &pid, &token, &steady_now_us)
          .ok());
  EXPECT_EQ(worker_id, 7);
  EXPECT_EQ(pid, 12345);
  EXPECT_EQ(token, 0xdeadbeefcafef00dull);
  EXPECT_EQ(steady_now_us, 3.25e9);
  EXPECT_FALSE(DecodeHelloPayload(payload + "x", &worker_id, &pid, &token,
                                  &steady_now_us)
                   .ok());
  EXPECT_FALSE(DecodeHelloPayload(payload.substr(0, 10), &worker_id, &pid,
                                  &token, &steady_now_us)
                   .ok());
}

TEST(PayloadTest, TelemetryRoundTrip) {
  runtime::WorkerTelemetry telemetry;
  telemetry.task = 5;
  telemetry.attempt = 2;
  telemetry.peak_rss_bytes = 123456789;
  runtime::WorkerSpan span;
  span.start_abs_us = 1.5e12;
  span.dur_us = 250.25;
  span.partition = 5;
  span.attempt = 2;
  span.stage_id = 7;
  span.rows = 4096;
  telemetry.spans.push_back(span);

  std::string payload = EncodeTelemetryPayload(telemetry);
  runtime::WorkerTelemetry got;
  ASSERT_TRUE(DecodeTelemetryPayload(payload, &got).ok());
  EXPECT_EQ(got.task, 5);
  EXPECT_EQ(got.attempt, 2);
  EXPECT_EQ(got.peak_rss_bytes, 123456789);
  ASSERT_EQ(got.spans.size(), 1u);
  EXPECT_EQ(got.spans[0].start_abs_us, 1.5e12);
  EXPECT_EQ(got.spans[0].dur_us, 250.25);
  EXPECT_EQ(got.spans[0].partition, 5);
  EXPECT_EQ(got.spans[0].attempt, 2);
  EXPECT_EQ(got.spans[0].stage_id, 7);
  EXPECT_EQ(got.spans[0].rows, 4096);

  // Trailing bytes and truncation at every split point are rejected.
  EXPECT_FALSE(DecodeTelemetryPayload(payload + "x", &got).ok());
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeTelemetryPayload(payload.substr(0, len), &got).ok())
        << "prefix of length " << len << " accepted";
  }
  // Oversized span count must fail fast without allocating (the count
  // field follows task, attempt, and the RSS reading: offset 16).
  std::string oversized = payload;
  oversized[16] = oversized[17] = oversized[18] = oversized[19] =
      static_cast<char>(0xFF);
  EXPECT_FALSE(DecodeTelemetryPayload(oversized, &got).ok());
}

TEST(PayloadTest, TaskAndResultRoundTrip) {
  std::string task = EncodeTaskPayload(3, 2);
  int p = 0, attempt = 0;
  ASSERT_TRUE(DecodeTaskPayload(task, &p, &attempt).ok());
  EXPECT_EQ(p, 3);
  EXPECT_EQ(attempt, 2);

  Status failure = Status::TaskLost("payload corrupted in flight");
  std::string result = EncodeTaskResultPayload(5, 1, failure, "SLOTBYTES");
  Status decoded_status = Status::OK();
  std::string slots;
  ASSERT_TRUE(
      DecodeTaskResultPayload(result, &p, &attempt, &decoded_status, &slots)
          .ok());
  EXPECT_EQ(p, 5);
  EXPECT_EQ(attempt, 1);
  EXPECT_EQ(decoded_status.code(), StatusCode::kTaskLost);
  EXPECT_EQ(decoded_status.message(), "payload corrupted in flight");
  EXPECT_EQ(slots, "SLOTBYTES");

  // Oversized message length prefix must fail fast. The length field
  // follows p, attempt, and the status code (offset 12).
  std::string oversized = EncodeTaskResultPayload(0, 0, failure, "");
  oversized[12] = oversized[13] = oversized[14] = oversized[15] =
      static_cast<char>(0xFF);
  EXPECT_FALSE(
      DecodeTaskResultPayload(oversized, &p, &attempt, &decoded_status, &slots)
          .ok());
}

// -------------------------------- chaos --------------------------------

TEST(ChaosTest, ExplicitDirectiveConsumedOnce) {
  ChaosConfig config;
  config.kills.push_back({/*stage=*/3, /*worker=*/1, /*after_results=*/2});
  ChaosSchedule schedule(config);
  EXPECT_FALSE(schedule.ShouldKill(3, 1, 1));
  EXPECT_FALSE(schedule.ShouldKill(2, 1, 2));
  EXPECT_FALSE(schedule.ShouldKill(3, 0, 2));
  EXPECT_TRUE(schedule.ShouldKill(3, 1, 2));
  // A respawned worker reaching the same coordinate must survive.
  EXPECT_FALSE(schedule.ShouldKill(3, 1, 2));
}

TEST(ChaosTest, RateDrawsAreDeterministicPerSeed) {
  ChaosConfig config;
  config.seed = 42;
  config.kill_rate = 0.3;
  ChaosSchedule a(config), b(config);
  int kills = 0;
  for (int stage = 1; stage <= 8; ++stage) {
    for (int worker = 0; worker < 4; ++worker) {
      for (int results = 0; results < 4; ++results) {
        bool ka = a.ShouldKill(stage, worker, results);
        bool kb = b.ShouldKill(stage, worker, results);
        EXPECT_EQ(ka, kb);
        kills += ka ? 1 : 0;
      }
    }
  }
  // ~30% of 128 coordinates should fire; exact count is seed-determined.
  EXPECT_GT(kills, 0);
  EXPECT_LT(kills, 128);

  ChaosConfig off;
  off.kill_rate = 0.0;
  ChaosSchedule never(off);
  EXPECT_FALSE(never.ShouldKill(1, 0, 0));
  EXPECT_FALSE(never.enabled());
}

// ------------------------- task-slot marshalling ------------------------

TEST(WaveSlotsTest, RoundTripAllSlotKinds) {
  const int kTasks = 3;
  std::vector<ValueVec> rows(kTasks), rows2(kTasks);
  std::vector<HashedVec> hashed(kTasks), hashed2(kTasks);
  std::vector<std::vector<HashedVec>> buckets(kTasks), buckets2(kTasks);
  std::vector<std::optional<Value>> partials(kTasks), partials2(kTasks);
  std::vector<int64_t> nums(kTasks, 0), nums2(kTasks, 0);
  std::vector<std::vector<int64_t>> num_vecs(kTasks), num_vecs2(kTasks);
  std::vector<ChainTally> tallies(kTasks), tallies2(kTasks);

  rows[1] = {I(1), Value::MakePair(S("k"), D(2.5)), Value::MakeBag({I(7)})};
  hashed[1] = {HashedRow{42u, Value::MakePair(S("a"), I(1))},
               HashedRow{7u, Value::MakePair(S("b"), I(2))}};
  buckets[1] = {HashedVec{HashedRow{1u, I(10)}}, HashedVec{},
                HashedVec{HashedRow{2u, I(20)}, HashedRow{3u, I(30)}}};
  partials[1] = D(6.75);
  nums[1] = 987654321;
  num_vecs[1] = {11, 0, 22};
  tallies[1].Reset(2);
  tallies[1].Record(0, I(5));
  tallies[1].Record(0, I(6));
  tallies[1].Record(1, S("wide row"));

  WaveSlots src{&rows, &hashed, &buckets, &partials, &nums, &num_vecs,
                &tallies};
  auto bytes = runtime::EncodeTaskSlots(src, 1);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  WaveSlots dst{&rows2, &hashed2, &buckets2, &partials2, &nums2, &num_vecs2,
                &tallies2};
  ASSERT_TRUE(runtime::DecodeTaskSlots(dst, 1, *bytes).ok());
  EXPECT_EQ(rows2[1], rows[1]);
  ASSERT_EQ(hashed2[1].size(), hashed[1].size());
  for (size_t i = 0; i < hashed[1].size(); ++i) {
    EXPECT_EQ(hashed2[1][i].hash, hashed[1][i].hash);
    EXPECT_EQ(hashed2[1][i].row, hashed[1][i].row);
  }
  ASSERT_EQ(buckets2[1].size(), buckets[1].size());
  EXPECT_EQ(buckets2[1][2][1].row, I(30));
  ASSERT_TRUE(partials2[1].has_value());
  EXPECT_EQ(Serialize(*partials2[1]), Serialize(*partials[1]));
  EXPECT_EQ(nums2[1], nums[1]);
  EXPECT_EQ(num_vecs2[1], num_vecs[1]);
  EXPECT_EQ(tallies2[1].rows, tallies[1].rows);
  EXPECT_EQ(tallies2[1].sample_bytes, tallies[1].sample_bytes);
  // Untouched tasks stay untouched.
  EXPECT_TRUE(rows2[0].empty());
  EXPECT_FALSE(partials2[0].has_value());
}

TEST(WaveSlotsTest, EmptyPartialRoundTrips) {
  std::vector<std::optional<Value>> partials(2), partials2(2);
  WaveSlots src;
  src.partials = &partials;
  auto bytes = runtime::EncodeTaskSlots(src, 0);
  ASSERT_TRUE(bytes.ok());
  WaveSlots dst;
  dst.partials = &partials2;
  ASSERT_TRUE(runtime::DecodeTaskSlots(dst, 0, *bytes).ok());
  EXPECT_FALSE(partials2[0].has_value());
}

TEST(WaveSlotsTest, ShapeMismatchAndCorruptionRejected) {
  std::vector<ValueVec> rows(1);
  rows[0] = {I(1), I(2)};
  WaveSlots src;
  src.rows = &rows;
  auto bytes = runtime::EncodeTaskSlots(src, 0);
  ASSERT_TRUE(bytes.ok());

  // Decoding into a wave with a different slot shape is corruption.
  std::vector<int64_t> nums(1, 0);
  WaveSlots wrong;
  wrong.nums = &nums;
  EXPECT_FALSE(runtime::DecodeTaskSlots(wrong, 0, *bytes).ok());

  // Trailing bytes and truncation at every split point are rejected.
  std::vector<ValueVec> rows2(1);
  WaveSlots dst;
  dst.rows = &rows2;
  EXPECT_FALSE(runtime::DecodeTaskSlots(dst, 0, *bytes + "x").ok());
  for (size_t len = 0; len < bytes->size(); ++len) {
    EXPECT_FALSE(runtime::DecodeTaskSlots(dst, 0, bytes->substr(0, len)).ok())
        << "prefix of length " << len << " accepted";
  }
  // Out-of-range task index.
  EXPECT_FALSE(runtime::DecodeTaskSlots(dst, 5, *bytes).ok());
}

// ----------------------------- end to end ------------------------------

/// Wordcount-shaped pipeline: map to (word, 1) then reduceByKey(+).
StatusOr<ValueVec> RunWordcount(Engine& engine) {
  ValueVec words;
  const char* kWords[] = {"spark", "flink", "diablo", "spark", "loop",
                          "spark", "flink", "array", "loop",  "diablo"};
  for (int rep = 0; rep < 12; ++rep) {
    for (const char* w : kWords) words.push_back(S(w));
  }
  Dataset ds = engine.Parallelize(std::move(words));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset pairs, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
        return Value::MakePair(v, I(1));
      }, "wc.pair"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset counts,
      engine.ReduceByKey(
          pairs,
          [](const Value& a, const Value& b) -> StatusOr<Value> {
            return I(a.AsInt() + b.AsInt());
          },
          "wc.count"));
  return engine.Collect(counts);
}

/// PageRank-shaped iteration: float ranks folded over three rounds of
/// map + reduceByKey. Floating-point, so byte-identity is the real test.
StatusOr<ValueVec> RunIterativeRanks(Engine& engine) {
  ValueVec init;
  for (int i = 0; i < 40; ++i) {
    init.push_back(Value::MakePair(I(i % 7), D(0.01 * i + 0.1)));
  }
  Dataset ranks = engine.Parallelize(std::move(init));
  for (int step = 0; step < 3; ++step) {
    DIABLO_ASSIGN_OR_RETURN(
        Dataset contrib,
        engine.Map(ranks, [](const Value& v) -> StatusOr<Value> {
          const ValueVec& kv = v.tuple();
          return Value::MakePair(I((kv[0].AsInt() + 1) % 7),
                                 D(kv[1].AsDouble() * 0.85 + 0.15));
        }, "pr.contrib"));
    DIABLO_ASSIGN_OR_RETURN(
        ranks, engine.ReduceByKey(
                   contrib,
                   [](const Value& a, const Value& b) -> StatusOr<Value> {
                     return D(a.AsDouble() + b.AsDouble());
                   },
                   "pr.sum"));
  }
  return engine.Collect(ranks);
}

std::string Bytes(const ValueVec& rows) {
  std::string out;
  for (const Value& v : rows) out += Serialize(v);
  return out;
}

EngineConfig DistConfigured(Coordinator* coordinator) {
  EngineConfig config;
  config.remote = coordinator;
  config.dist_lose_on_kill = true;
  return config;
}

DistConfig FastDist(int workers) {
  DistConfig config;
  config.num_workers = workers;
  config.heartbeat_ms = 50;
  return config;
}

TEST(DistEndToEndTest, WordcountMatchesLocalByteForByte) {
  Engine local((EngineConfig()));
  auto expected = RunWordcount(local);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Coordinator coordinator(FastDist(2));
  Engine dist(DistConfigured(&coordinator));
  auto got = RunWordcount(dist);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
  EXPECT_GT(dist.metrics().total_dist_tasks(), 0);
  EXPECT_EQ(local.metrics().total_dist_tasks(), 0);
}

TEST(DistEndToEndTest, IterativeRanksMatchLocalByteForByte) {
  Engine local((EngineConfig()));
  auto expected = RunIterativeRanks(local);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Coordinator coordinator(FastDist(3));
  Engine dist(DistConfigured(&coordinator));
  auto got = RunIterativeRanks(dist);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
}

TEST(DistEndToEndTest, SurvivesTwoChaosKillsWithIdenticalOutput) {
  Engine local((EngineConfig()));
  auto expected = RunIterativeRanks(local);
  ASSERT_TRUE(expected.ok());

  // Kill worker 0 at the very start of the first combine wave and
  // worker 1 mid-way through a later wave: both deaths land mid-wave
  // with tasks in flight, exercising redistribute + re-dispatch + the
  // lineage recovery path for the lost partitions.
  DistConfig config = FastDist(3);
  config.chaos.kills.push_back({/*stage=*/1, /*worker=*/0, 0});
  config.chaos.kills.push_back({/*stage=*/4, /*worker=*/1, 1});
  Coordinator coordinator(config);
  Engine dist(DistConfigured(&coordinator));
  auto got = RunIterativeRanks(dist);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
  EXPECT_EQ(coordinator.chaos_kills(), 2);
  EXPECT_GE(dist.metrics().total_dist_workers_lost(), 2);
}

TEST(DistEndToEndTest, RespawnsWhenEveryWorkerIsDead) {
  Engine local((EngineConfig()));
  auto expected = RunWordcount(local);
  ASSERT_TRUE(expected.ok());

  // Single worker killed on connect: no survivors to degrade onto, so
  // the coordinator must spend its respawn budget.
  DistConfig config = FastDist(1);
  config.chaos.kills.push_back({/*stage=*/1, /*worker=*/0, 0});
  Coordinator coordinator(config);
  Engine dist(DistConfigured(&coordinator));
  auto got = RunWordcount(dist);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
  EXPECT_EQ(coordinator.chaos_kills(), 1);
  EXPECT_GE(coordinator.respawns_used(), 1);
}

TEST(DistEndToEndTest, DeadlineRecoversFromStalledWorker) {
  Engine local((EngineConfig()));
  auto expected = RunWordcount(local);
  ASSERT_TRUE(expected.ok());

  // Worker 0 sleeps 10x the task deadline before every task: the
  // coordinator must declare it dead and finish on the survivors.
  DistConfig config = FastDist(2);
  config.task_deadline_ms = 200;
  config.stall_worker = 0;
  config.stall_ms = 2000;
  Coordinator coordinator(config);
  Engine dist(DistConfigured(&coordinator));
  auto got = RunWordcount(dist);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
  EXPECT_GE(dist.metrics().total_dist_workers_lost(), 1);
  EXPECT_GE(dist.metrics().total_dist_retries(), 1);
}

TEST(DistEndToEndTest, SimulatedFaultsAccountIdenticallyOverDist) {
  // The PR 1 fault-injection oracle doubles as the distributed
  // correctness oracle: simulated kills/retries must charge the exact
  // same attempt counts and recovery seconds whether the attempt runs
  // in-process or in a forked worker.
  EngineConfig faulty;
  faulty.faults.seed = 1234;
  faulty.faults.task_failure_rate = 0.2;
  Engine local(faulty);
  auto expected = RunIterativeRanks(local);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Coordinator coordinator(FastDist(2));
  EngineConfig dist_config = faulty;
  dist_config.remote = &coordinator;
  dist_config.dist_lose_on_kill = true;
  Engine dist(dist_config);
  auto got = RunIterativeRanks(dist);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
  EXPECT_EQ(dist.metrics().total_attempts(), local.metrics().total_attempts());
  EXPECT_EQ(dist.metrics().total_recovery_seconds(),
            local.metrics().total_recovery_seconds());
}

TEST(DistEndToEndTest, ChaosOutputIdenticalWithTracingOnAndOff) {
  // Telemetry frames flow only when tracing (or a registry) is on; the
  // program output must be byte-identical either way, even while chaos
  // is killing workers mid-wave.
  DistConfig config = FastDist(3);
  config.chaos.kills.push_back({/*stage=*/2, /*worker=*/1, 1});
  auto run = [&](bool tracing) {
    Coordinator coordinator(config);
    EngineConfig engine_config = DistConfigured(&coordinator);
    engine_config.tracing = tracing;
    Engine dist(engine_config);
    auto got = RunIterativeRanks(dist);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    return got.ok() ? Bytes(*got) : std::string();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(DistEndToEndTest, ChaosTelemetryMergesWorkerSpansAndEvents) {
  Engine local((EngineConfig()));
  auto expected = RunIterativeRanks(local);
  ASSERT_TRUE(expected.ok());

  runtime::EventLog events;
  runtime::MetricsRegistry registry;
  DistConfig config = FastDist(3);
  config.chaos.kills.push_back({/*stage=*/1, /*worker=*/0, 0});
  config.events = &events;
  Coordinator coordinator(config);
  EngineConfig engine_config = DistConfigured(&coordinator);
  engine_config.events = &events;
  engine_config.registry = &registry;
  Engine dist(engine_config);
  auto got = RunIterativeRanks(dist);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));

  // Every SIGKILL produced a chaos_kill event, every declared death a
  // worker_lost event, and the lost partitions a lineage_recovery.
  EXPECT_EQ(events.CountOf("chaos_kill"), coordinator.chaos_kills());
  EXPECT_GE(events.CountOf("worker_lost"),
            dist.metrics().total_dist_workers_lost());
  EXPECT_GE(events.CountOf("lineage_recovery"), 1);

  // Surviving workers' telemetry spans were spliced into the driver
  // trace as distinct process lanes.
  ASSERT_NE(dist.trace(), nullptr);
  std::vector<runtime::TraceSpan> spans = dist.trace()->Snapshot();
  std::set<int> processes;
  for (const auto& s : spans) {
    if (s.kind == runtime::SpanKind::kTask && s.process > 0) {
      processes.insert(s.process);
    }
  }
  EXPECT_GE(processes.size(), 2u)
      << "expected task spans from at least two surviving worker processes";
  // Worker-side counters reached the registry and the stage stats.
  EXPECT_GT(registry.CounterValue("diablo_stages_total"), 0);
  EXPECT_GT(dist.metrics().max_peak_rss_bytes(), 0);
}

TEST(DistEndToEndTest, ExhaustedRespawnBudgetFailsCleanly) {
  // Every (stage, worker, results) coordinate kills: after the respawn
  // budget is spent the wave must fail with kDistError — bounded, no
  // hang, no partial output mistaken for success.
  DistConfig config = FastDist(1);
  config.chaos.kill_rate = 1.0;
  config.max_respawns = 2;
  Coordinator coordinator(config);
  Engine dist(DistConfigured(&coordinator));
  auto got = RunWordcount(dist);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDistError);
  EXPECT_NE(got.status().message().find("respawn budget"), std::string::npos)
      << got.status().ToString();
}

}  // namespace
}  // namespace diablo::dist
