// Unit tests for the sparse-array operations: the merge operator ⊳
// (local and distributed), lifted indexing, and dense-to-sparse
// conversion helpers.

#include "runtime/array.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/operators.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }

ValueVec Pairs(std::vector<std::pair<int64_t, int64_t>> kvs) {
  ValueVec out;
  for (auto [k, v] : kvs) out.push_back(Value::MakePair(I(k), I(v)));
  return out;
}

TEST(ArrayMergeLocal, PaperExample) {
  // {(3,10),(1,20)} ⊳ {(1,30),(4,40)} = {(3,10),(1,30),(4,40)}.
  auto merged = ArrayMergeLocal(Pairs({{3, 10}, {1, 20}}),
                                Pairs({{1, 30}, {4, 40}}));
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(BagEquals(Value::MakeBag(*merged),
                        Value::MakeBag(Pairs({{3, 10}, {1, 30}, {4, 40}}))));
}

TEST(ArrayMergeLocal, RightBiasWithinRight) {
  // Several updates to the same key in the right operand: last wins.
  auto merged = ArrayMergeLocal({}, Pairs({{1, 10}, {1, 20}, {1, 30}}));
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 1u);
  EXPECT_EQ((*merged)[0].tuple()[1].AsInt(), 30);
}

TEST(ArrayMergeLocal, EmptyOperands) {
  auto left_empty = ArrayMergeLocal({}, Pairs({{1, 1}}));
  ASSERT_TRUE(left_empty.ok());
  EXPECT_EQ(left_empty->size(), 1u);
  auto right_empty = ArrayMergeLocal(Pairs({{1, 1}}), {});
  ASSERT_TRUE(right_empty.ok());
  EXPECT_EQ(right_empty->size(), 1u);
  auto both = ArrayMergeLocal({}, {});
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both->empty());
}

TEST(ArrayMergeLocal, RejectsNonPairs) {
  EXPECT_FALSE(ArrayMergeLocal({I(3)}, {}).ok());
}

TEST(ArrayMergeDistributed, AgreesWithLocal) {
  for (int parts : {1, 3, 8}) {
    EngineConfig config;
    config.num_partitions = parts;
    Engine engine(config);
    ValueVec x = Pairs({{1, 10}, {2, 20}, {3, 30}, {5, 50}});
    ValueVec y = Pairs({{2, 200}, {4, 400}});
    auto expected = ArrayMergeLocal(x, y);
    ASSERT_TRUE(expected.ok());
    auto merged = ArrayMerge(engine, engine.Parallelize(x),
                             engine.Parallelize(y));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ValueVec got = engine.Collect(*merged).value();
    EXPECT_TRUE(BagEquals(Value::MakeBag(got), Value::MakeBag(*expected)))
        << parts << " partitions";
  }
}

TEST(ArrayIndexLocal, LiftedSemantics) {
  ValueVec arr = Pairs({{1, 10}, {2, 20}});
  Value hit = ArrayIndexLocal(arr, I(2));
  ASSERT_TRUE(hit.is_bag());
  ASSERT_EQ(hit.bag().size(), 1u);
  EXPECT_EQ(hit.bag()[0].AsInt(), 20);
  Value miss = ArrayIndexLocal(arr, I(9));
  EXPECT_TRUE(miss.is_bag());
  EXPECT_TRUE(miss.bag().empty());
}

TEST(DenseConversions, VectorAndMatrix) {
  ValueVec vec = DenseToSparseVector({1.5, 2.5});
  ASSERT_EQ(vec.size(), 2u);
  EXPECT_EQ(vec[1].tuple()[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(vec[1].tuple()[1].AsDouble(), 2.5);

  ValueVec mat = DenseToSparseMatrix({{1, 2}, {3, 4}});
  ASSERT_EQ(mat.size(), 4u);
  // Row-major: last element is ((1,1),4).
  EXPECT_EQ(mat[3].tuple()[0], MatrixKey(1, 1));
  EXPECT_DOUBLE_EQ(mat[3].tuple()[1].AsDouble(), 4);
}

}  // namespace
}  // namespace diablo::runtime
