// Unit tests for the structured event log (runtime/events.h): emit
// ordering, timestamp monotonicity, counting, and the JSONL line shape
// consumed by tools/check_events.py.

#include "runtime/events.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace diablo::runtime {
namespace {

Event Named(const std::string& name) {
  Event e;
  e.name = name;
  return e;
}

TEST(EventLogTest, EmitPreservesOrderAndCounts) {
  EventLog log;
  log.Emit(Named("task_retry"));
  log.Emit(Named("worker_lost"));
  log.Emit(Named("task_retry"));
  EXPECT_EQ(log.size(), 3);
  EXPECT_EQ(log.CountOf("task_retry"), 2);
  EXPECT_EQ(log.CountOf("worker_lost"), 1);
  EXPECT_EQ(log.CountOf("nonexistent"), 0);
  std::vector<StampedEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].event.name, "task_retry");
  EXPECT_EQ(events[1].event.name, "worker_lost");
  EXPECT_EQ(events[2].event.name, "task_retry");
}

TEST(EventLogTest, TimestampsAreNondecreasingInLogOrder) {
  EventLog log;
  for (int i = 0; i < 100; ++i) log.Emit(Named("statement"));
  std::vector<StampedEvent> events = log.Snapshot();
  double prev = 0;
  for (const StampedEvent& se : events) {
    EXPECT_GE(se.ts_us, prev);
    prev = se.ts_us;
  }
}

TEST(EventLogTest, ConcurrentEmitsAllLand) {
  // Emission sites fire from wave worker threads; the log must not
  // drop or tear events under contention.
  EventLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < 250; ++i) log.Emit(Named("task_retry"));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.size(), 1000);
  EXPECT_EQ(log.CountOf("task_retry"), 1000);
}

TEST(EventLogTest, JsonlLineShape) {
  EventLog log;
  Event e;
  e.name = "task_retry";
  e.stage_id = 3;
  e.src_file = "wordcount.diablo";
  e.src_line = 12;
  e.src_column = 5;
  e.ints.emplace_back("partition", 7);
  e.ints.emplace_back("attempt", 1);
  e.strs.emplace_back("reason", "sim_kill");
  log.Emit(std::move(e));
  log.Emit(Named("worker_respawn"));

  std::ostringstream out;
  log.WriteJsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"task_retry\""), std::string::npos);
  EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"stage\":3"), std::string::npos);
  EXPECT_NE(line.find("\"location\":{\"file\":\"wordcount.diablo\","
                      "\"line\":12,\"column\":5}"),
            std::string::npos);
  EXPECT_NE(line.find("\"partition\":7"), std::string::npos);
  EXPECT_NE(line.find("\"attempt\":1"), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"sim_kill\""), std::string::npos);

  // An event with no stage or provenance renders explicit nulls, so
  // every line has the same keys.
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"event\":\"worker_respawn\""), std::string::npos);
  EXPECT_NE(line.find("\"stage\":null"), std::string::npos);
  EXPECT_NE(line.find("\"location\":null"), std::string::npos);
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(EventLogTest, JsonlEscapesStrings) {
  EventLog log;
  Event e;
  e.name = "statement";
  e.strs.emplace_back("label", "say \"hi\"\nback\\slash");
  log.Emit(std::move(e));
  std::ostringstream out;
  log.WriteJsonl(out);
  EXPECT_NE(out.str().find("\"label\":\"say \\\"hi\\\"\\nback\\\\slash\""),
            std::string::npos);
}

}  // namespace
}  // namespace diablo::runtime
