// Columnar execution property tests (EngineConfig::columnar).
//
// The columnar fast paths — batch kernels over fused chains, the
// vectorized shuffle scatter, the typed reduceByKey combine and the
// typed scalar fold — carry one contract: byte-identical results to the
// boxed per-row engine for every workload, partition count, host thread
// count, fusion/hash-agg setting, fault schedule and distributed chaos
// kill. Rows the typed paths cannot represent must spill to boxed
// mid-stream without consuming or reordering anything.

#include "runtime/column_batch.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "runtime/engine.h"
#include "runtime/fault.h"
#include "runtime/keyed_accumulator.h"
#include "runtime/operators.h"
#include "runtime/serialize.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }
Value S(const std::string& v) { return Value::MakeString(v); }

// ---------------------------------------------------------------------
// Column / kernel unit tests.

TEST(HashColumnTest, MatchesPerRowValueHashForEveryTag) {
  std::vector<ValueVec> shapes = {
      {},  // empty, kUnknown
      {I(0), I(-1), I(7), I(std::numeric_limits<int64_t>::min()),
       I(std::numeric_limits<int64_t>::max())},
      {D(0.0), D(-0.0), D(3.25), D(-2.5e300)},
      {Value::MakeBool(true), Value::MakeBool(false), Value::MakeBool(true)},
      {S("alpha"), S("beta"), S("alpha"), S(""), S("beta")},
      {I(1), S("demoted"), Value::MakeTuple({I(2), D(0.5)}),
       Value::MakeBag({I(9)})},  // boxed spill
  };
  for (size_t shape = 0; shape < shapes.size(); ++shape) {
    Column col;
    for (const Value& v : shapes[shape]) col.Append(v);
    std::vector<size_t> hashes;
    HashColumn(col, &hashes);
    ASSERT_EQ(hashes.size(), col.size()) << "shape " << shape;
    for (size_t i = 0; i < col.size(); ++i) {
      EXPECT_EQ(hashes[i], col.ValueAt(i).Hash())
          << "shape " << shape << " row " << i;
    }
  }
}

TEST(ColumnTest, StringColumnInternsWithCachedHashes) {
  Column col;
  for (const char* w : {"a", "b", "a", "c", "b", "a"}) col.Append(S(w));
  EXPECT_EQ(col.tag(), ColumnTag::kString);
  ASSERT_EQ(col.dict().size(), 3u);
  EXPECT_EQ(col.codes(), (std::vector<uint32_t>{0, 1, 0, 2, 1, 0}));
  for (uint32_t code = 0; code < col.dict().size(); ++code) {
    EXPECT_EQ(col.dict().hash(code), col.dict().value(code).Hash());
  }
}

TEST(ColumnTest, KindChangeDemotesToBoxedPreservingRows) {
  Column col;
  ValueVec rows = {I(1), I(2), D(3.5), S("x")};
  for (const Value& v : rows) col.Append(v);
  EXPECT_EQ(col.tag(), ColumnTag::kBoxed);
  ASSERT_EQ(col.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(col.ValueAt(i), rows[i]) << "row " << i;
  }
}

TEST(ApplyMapKernelTest, MatchesEvalBinOpOnCoveredCombinations) {
  const ValueVec int_rows = {I(-5), I(0), I(3), I(41), I(-1000)};
  const ValueVec dbl_rows = {D(-5.5), D(0.0), D(3.25), D(41.0)};
  for (BinOp op : {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kMin,
                   BinOp::kMax}) {
    for (const Value& operand : {I(3), D(2.5)}) {
      for (const ValueVec* rows : {&int_rows, &dbl_rows}) {
        Column col;
        for (const Value& v : *rows) col.Append(v);
        std::vector<uint8_t> live(rows->size(), 1);
        live[1] = 0;  // dead rows are don't-care but must not crash
        ASSERT_TRUE(ApplyMapKernel(op, operand, live, &col))
            << BinOpName(op) << " " << operand.ToString();
        for (size_t i = 0; i < rows->size(); ++i) {
          if (!live[i]) continue;
          auto expected = EvalBinOp(op, (*rows)[i], operand);
          ASSERT_TRUE(expected.ok());
          EXPECT_EQ(col.ValueAt(i), *expected)
              << BinOpName(op) << " row " << (*rows)[i].ToString()
              << " operand " << operand.ToString();
        }
      }
    }
  }
}

TEST(ApplyMapKernelTest, StringConcatTransformsDictionaryOnce) {
  Column col;
  for (const char* w : {"a", "b", "a", ""}) col.Append(S(w));
  std::vector<uint8_t> live(col.size(), 1);
  ASSERT_TRUE(ApplyMapKernel(BinOp::kAdd, S("_sfx"), live, &col));
  const ValueVec expected = {S("a_sfx"), S("b_sfx"), S("a_sfx"), S("_sfx")};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(col.ValueAt(i), expected[i]) << "row " << i;
  }
  // Distinct entries stay distinct: the dictionary was rewritten, not
  // the per-row codes.
  EXPECT_EQ(col.dict().size(), 3u);
}

TEST(ApplyMapKernelTest, UncoveredCombinationsLeaveColumnUntouched) {
  std::vector<uint8_t> live(1, 1);
  Column strings;
  strings.Append(S("a"));
  EXPECT_FALSE(ApplyMapKernel(BinOp::kMul, S("b"), live, &strings));
  EXPECT_FALSE(ApplyMapKernel(BinOp::kAdd, I(1), live, &strings));
  EXPECT_EQ(strings.ValueAt(0), S("a"));

  Column ints;
  ints.Append(I(10));
  EXPECT_FALSE(ApplyMapKernel(BinOp::kDiv, I(2), live, &ints));
  EXPECT_FALSE(ApplyMapKernel(BinOp::kAdd, S("nope"), live, &ints));
  EXPECT_EQ(ints.ValueAt(0), I(10));
  EXPECT_EQ(ints.tag(), ColumnTag::kInt64);

  Column boxed;
  boxed.Append(Value::MakeTuple({I(1), I(2)}));
  EXPECT_FALSE(ApplyMapKernel(BinOp::kAdd, I(1), live, &boxed));
}

TEST(ApplyFilterKernelTest, MatchesEvalBinOpComparisons) {
  struct Case {
    ValueVec rows;
    Value operand;
  };
  std::vector<Case> cases = {
      {{I(-5), I(0), I(5), I(6), I(5)}, I(5)},
      {{I(1), I(4), I(5), I(9)}, D(4.5)},
      {{D(0.0), D(-0.0), D(2.5), D(9.0)}, D(2.5)},
      {{S("ant"), S("bee"), S("ant"), S("cat"), S("")}, S("bee")},
  };
  for (BinOp op : {BinOp::kEq, BinOp::kNe, BinOp::kLt, BinOp::kLe,
                   BinOp::kGt, BinOp::kGe}) {
    for (size_t c = 0; c < cases.size(); ++c) {
      Column col;
      for (const Value& v : cases[c].rows) col.Append(v);
      std::vector<uint8_t> live(cases[c].rows.size(), 1);
      live.back() = 0;  // already-dead rows must stay dead
      ASSERT_TRUE(ApplyFilterKernel(op, cases[c].operand, col, &live))
          << BinOpName(op) << " case " << c;
      for (size_t i = 0; i < cases[c].rows.size(); ++i) {
        if (i + 1 == cases[c].rows.size()) {
          EXPECT_EQ(live[i], 0) << "dead row revived";
          continue;
        }
        auto verdict = EvalBinOp(op, cases[c].rows[i], cases[c].operand);
        ASSERT_TRUE(verdict.ok());
        EXPECT_EQ(live[i] != 0, verdict->AsBool())
            << BinOpName(op) << " case " << c << " row " << i;
      }
    }
  }
}

TEST(ApplyFilterKernelTest, UncoveredCombinationsLeaveMaskUntouched) {
  Column boxed;
  boxed.Append(Value::MakeTuple({I(1)}));
  std::vector<uint8_t> live(1, 1);
  EXPECT_FALSE(ApplyFilterKernel(BinOp::kLt, I(5), boxed, &live));
  EXPECT_EQ(live[0], 1);

  Column ints;
  ints.Append(I(1));
  EXPECT_FALSE(ApplyFilterKernel(BinOp::kAnd, I(1), ints, &live));
  EXPECT_FALSE(ApplyFilterKernel(BinOp::kLt, S("str"), ints, &live));
}

TEST(ColumnBatchTest, CompactPreservesSurvivorOrderForEveryTag) {
  std::mt19937_64 rng(11);
  for (int shape = 0; shape < 5; ++shape) {
    ColumnBatch batch;
    for (int i = 0; i < 17; ++i) {
      switch (shape) {
        case 0: batch.values.Append(I(i * 11 - 40)); break;
        case 1: batch.values.Append(D(i * 0.75)); break;
        case 2: batch.values.Append(S("w" + std::to_string(i % 5))); break;
        case 3: batch.values.Append(Value::MakeBool(i % 3 == 0)); break;
        default:
          batch.pairs = true;
          batch.keys.push_back(I(i % 4));
          batch.values.Append(i % 2 == 0 ? I(i) : S("mixed"));  // boxed
          break;
      }
    }
    std::vector<uint8_t> live(batch.size());
    ValueVec survivors;
    ValueVec surviving_keys;
    for (size_t i = 0; i < live.size(); ++i) {
      live[i] = rng() % 3 != 0 ? 1 : 0;
      if (live[i]) {
        if (batch.pairs) surviving_keys.push_back(batch.keys[i]);
        survivors.push_back(batch.RowAt(i));
      }
    }
    batch.Compact(live);
    ASSERT_EQ(batch.size(), survivors.size()) << "shape " << shape;
    for (size_t i = 0; i < survivors.size(); ++i) {
      EXPECT_EQ(batch.RowAt(i), survivors[i])
          << "shape " << shape << " row " << i;
    }
  }
}

/// Reference boxed reduceByKey fold: insertion-ordered accumulator,
/// combined with EvalBinOp in arrival order, canonicalized by key.
ValueVec BoxedReduce(BinOp op, const ValueVec& rows) {
  KeyedAccumulator<Value> acc;
  for (const Value& row : rows) {
    const Value& key = row.tuple()[0];
    auto ref = acc.FindOrCreate(key.Hash(), key);
    if (ref.inserted) {
      ref.payload = row.tuple()[1];
    } else {
      ref.payload = *EvalBinOp(op, ref.payload, row.tuple()[1]);
    }
  }
  acc.SortByKey();
  ValueVec out;
  for (const auto& e : acc.entries()) {
    out.push_back(Value::MakePair(e.key, e.payload));
  }
  return out;
}

TEST(TypedReduceAccumulatorTest, MidStreamSpillMatchesAllBoxedFold) {
  for (BinOp op : {BinOp::kAdd, BinOp::kMul, BinOp::kMin, BinOp::kMax}) {
    std::mt19937_64 rng(77);
    ValueVec rows;
    for (int i = 0; i < 120; ++i) {
      rows.push_back(Value::MakePair(I(static_cast<int64_t>(rng() % 9)),
                                     I(1 + static_cast<int64_t>(rng() % 7))));
    }
    // Row 120 deviates: a double payload after an int-pinned stream.
    rows.push_back(Value::MakePair(I(3), D(2.5)));
    for (int i = 0; i < 40; ++i) {
      rows.push_back(
          Value::MakePair(I(static_cast<int64_t>(rng() % 9)),
                          D(static_cast<double>(rng() % 30) * 0.5)));
    }

    TypedReduceAccumulator typed(op, 16);
    size_t i = 0;
    for (; i < rows.size(); ++i) {
      if (!typed.Add(rows[i])) break;
    }
    // The deviating row bounced WITHOUT being consumed.
    ASSERT_EQ(i, 120u) << BinOpName(op);
    EXPECT_EQ(typed.rows(), 120u);
    KeyedAccumulator<Value> acc;
    typed.SpillTo(&acc);
    for (; i < rows.size(); ++i) {
      const Value& key = rows[i].tuple()[0];
      auto ref = acc.FindOrCreate(key.Hash(), key);
      if (ref.inserted) {
        ref.payload = rows[i].tuple()[1];
      } else {
        ref.payload = *EvalBinOp(op, ref.payload, rows[i].tuple()[1]);
      }
    }
    acc.SortByKey();
    ValueVec got;
    for (const auto& e : acc.entries()) {
      got.push_back(Value::MakePair(e.key, e.payload));
    }
    EXPECT_EQ(got, BoxedReduce(op, rows)) << BinOpName(op);
  }
}

TEST(TypedReduceAccumulatorTest, StringKeysEmitSortedWithCachedHashes) {
  std::mt19937_64 rng(5);
  ValueVec rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back(Value::MakePair(S("key" + std::to_string(rng() % 13)),
                                   D(static_cast<double>(rng() % 40) * 0.25)));
  }
  TypedReduceAccumulator typed(BinOp::kAdd, 8);
  for (const Value& row : rows) ASSERT_TRUE(typed.Add(row));
  EXPECT_EQ(typed.size(), 13u);

  HashedVec hashed;
  typed.EmitSortedHashed(&hashed);
  ValueVec plain;
  typed.EmitSortedRows(&plain);
  ASSERT_EQ(hashed.size(), plain.size());
  const ValueVec expected = BoxedReduce(BinOp::kAdd, rows);
  ASSERT_EQ(plain.size(), expected.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], expected[i]) << "row " << i;
    EXPECT_EQ(hashed[i].row, expected[i]) << "row " << i;
    EXPECT_EQ(hashed[i].hash, expected[i].tuple()[0].Hash()) << "row " << i;
  }
}

TEST(TypedFoldTest, MixedNumericFoldPromotesLikeBoxed) {
  // int → double promotion happens inside the fold, exactly like
  // NumericOp: no spill, and the result is bit-identical to the boxed
  // EvalBinOp fold in the same arrival order.
  for (BinOp op : {BinOp::kAdd, BinOp::kMul, BinOp::kMin, BinOp::kMax}) {
    ValueVec rows = {I(7), I(-2), I(5), D(0.5), D(12.0), I(3)};
    TypedFold fold(op);
    for (const Value& v : rows) ASSERT_TRUE(fold.Add(v)) << BinOpName(op);
    Value expected = rows[0];
    for (size_t j = 1; j < rows.size(); ++j) {
      expected = *EvalBinOp(op, expected, rows[j]);
    }
    EXPECT_EQ(fold.Result(), expected) << BinOpName(op);
    EXPECT_EQ(fold.rows(), rows.size());
  }
}

TEST(TypedFoldTest, NonNumericRowSpillsWithoutConsuming) {
  ValueVec rows = {I(7), I(-2), S("spill"), I(5)};
  TypedFold fold(BinOp::kAdd);
  size_t i = 0;
  for (; i < rows.size(); ++i) {
    if (!fold.Add(rows[i])) break;
  }
  ASSERT_EQ(i, 2u);  // the string bounced, unconsumed
  ASSERT_FALSE(fold.empty());
  EXPECT_EQ(fold.rows(), 2u);
  Value acc = fold.Result();
  EXPECT_EQ(acc, I(5));
  // The boxed continuation sees the deviating row itself: string
  // concatenation via '+' would error on int + string exactly as the
  // all-boxed fold would, so semantics stay aligned.
  EXPECT_FALSE(EvalBinOp(BinOp::kAdd, acc, rows[i]).ok());
}

// ---------------------------------------------------------------------
// Engine-level property: columnar execution is byte-identical to boxed.

StatusOr<ValueVec> WordCount(Engine& engine, const ValueVec& words) {
  Dataset ds = engine.Parallelize(words);
  DIABLO_ASSIGN_OR_RETURN(
      Dataset pairs, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
        return Value::MakePair(v, I(1));
      }));
  DIABLO_ASSIGN_OR_RETURN(Dataset counts,
                          engine.ReduceByKey(pairs, BinOp::kAdd));
  return engine.Collect(counts);
}

StatusOr<ValueVec> PageRankIters(Engine& engine, const ValueVec& edges) {
  Dataset links = engine.Parallelize(edges);
  DIABLO_ASSIGN_OR_RETURN(Dataset grouped, engine.GroupByKey(links));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset ranks,
      engine.MapValues(grouped,
                       [](const Value&) -> StatusOr<Value> { return D(1.0); }));
  for (int iter = 0; iter < 2; ++iter) {
    DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(grouped, ranks));
    DIABLO_ASSIGN_OR_RETURN(
        Dataset contribs,
        engine.FlatMap(joined, [](const Value& v) -> StatusOr<ValueVec> {
          const ValueVec& outs = v.tuple()[1].tuple()[0].bag();
          const double rank = v.tuple()[1].tuple()[1].AsDouble();
          ValueVec out;
          out.reserve(outs.size());
          for (const Value& dst : outs) {
            out.push_back(Value::MakePair(
                dst, D(rank / static_cast<double>(outs.size()))));
          }
          return out;
        }));
    DIABLO_ASSIGN_OR_RETURN(Dataset summed,
                            engine.ReduceByKey(contribs, BinOp::kAdd));
    DIABLO_ASSIGN_OR_RETURN(
        ranks, engine.MapValues(summed, [](const Value& v) -> StatusOr<Value> {
          return D(0.15 + 0.85 * v.AsDouble());
        }));
  }
  return engine.Collect(ranks);
}

StatusOr<ValueVec> RelationalMix(Engine& engine, const ValueVec& rows) {
  Dataset ds = engine.Parallelize(rows);
  DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(ds, BinOp::kAdd));
  DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(ds, sums));
  DIABLO_ASSIGN_OR_RETURN(ValueVec out, engine.Collect(joined));
  DIABLO_ASSIGN_OR_RETURN(Dataset cg, engine.CoGroup(ds, sums));
  DIABLO_ASSIGN_OR_RETURN(ValueVec cg_rows, engine.Collect(cg));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset keys, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
        return v.tuple()[0];
      }));
  DIABLO_ASSIGN_OR_RETURN(Dataset uniq, engine.Distinct(keys));
  DIABLO_ASSIGN_OR_RETURN(ValueVec uniq_rows, engine.Collect(uniq));
  out.insert(out.end(), cg_rows.begin(), cg_rows.end());
  out.insert(out.end(), uniq_rows.begin(), uniq_rows.end());
  return out;
}

/// Fully-kernelized fused chains plus typed shuffle/reduce: the
/// workload that drives every columnar fast path at once. Input rows
/// are (int64 key, double value) pairs.
StatusOr<ValueVec> KernelChains(Engine& engine, const ValueVec& rows) {
  Dataset ds = engine.Parallelize(rows);
  // Paired chain over the value column: every op carries a kernel, so
  // under columnar the whole chain runs as batch kernels in Force.
  DIABLO_ASSIGN_OR_RETURN(Dataset a, engine.MapValues(ds, BinOp::kMul, D(2.0)));
  DIABLO_ASSIGN_OR_RETURN(a, engine.FilterValues(a, BinOp::kLt, D(60.0)));
  DIABLO_ASSIGN_OR_RETURN(a, engine.MapValues(a, BinOp::kAdd, D(1.0)));
  DIABLO_ASSIGN_OR_RETURN(a, engine.Force(a));
  DIABLO_ASSIGN_OR_RETURN(ValueVec out, engine.Collect(a));
  // Typed combine + reduce through the shuffle (double payloads).
  DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(a, BinOp::kAdd));
  DIABLO_ASSIGN_OR_RETURN(ValueVec sum_rows, engine.Collect(sums));
  // Scalar (non-pair) chain over int64 keys.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset keys, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
        return v.tuple()[0];
      }));
  DIABLO_ASSIGN_OR_RETURN(keys, engine.Force(keys));
  DIABLO_ASSIGN_OR_RETURN(Dataset scaled, engine.Map(keys, BinOp::kMul, I(3)));
  DIABLO_ASSIGN_OR_RETURN(scaled, engine.Filter(scaled, BinOp::kNe, I(12)));
  DIABLO_ASSIGN_OR_RETURN(scaled, engine.Map(scaled, BinOp::kAdd, I(100)));
  DIABLO_ASSIGN_OR_RETURN(scaled, engine.Force(scaled));
  DIABLO_ASSIGN_OR_RETURN(ValueVec scaled_rows, engine.Collect(scaled));
  // Typed scalar fold.
  DIABLO_ASSIGN_OR_RETURN(auto total, engine.Reduce(scaled, BinOp::kAdd));
  out.insert(out.end(), sum_rows.begin(), sum_rows.end());
  out.insert(out.end(), scaled_rows.begin(), scaled_rows.end());
  if (total.has_value()) out.push_back(*total);
  return out;
}

StatusOr<ValueVec> RunWorkload(Engine& engine, int which,
                               const ValueVec& rows) {
  switch (which) {
    case 0:
      return WordCount(engine, rows);
    case 1:
      return PageRankIters(engine, rows);
    case 2:
      return RelationalMix(engine, rows);
    default:
      return KernelChains(engine, rows);
  }
}

ValueVec WorkloadInput(int which, std::mt19937_64& rng) {
  ValueVec rows;
  if (which == 0) {
    const int n = 200 + static_cast<int>(rng() % 300);
    for (int i = 0; i < n; ++i) {
      rows.push_back(S("word" + std::to_string(rng() % 37)));
    }
  } else if (which == 1) {
    const int nodes = 20 + static_cast<int>(rng() % 20);
    const int edges = 150 + static_cast<int>(rng() % 150);
    for (int i = 0; i < edges; ++i) {
      rows.push_back(Value::MakePair(I(static_cast<int64_t>(rng() % nodes)),
                                     I(static_cast<int64_t>(rng() % nodes))));
    }
  } else if (which == 2) {
    const int n = 150 + static_cast<int>(rng() % 250);
    for (int i = 0; i < n; ++i) {
      rows.push_back(Value::MakePair(
          I(static_cast<int64_t>(rng() % 23)),
          D(static_cast<double>(rng() % 1000) / 7.0 - 50.0)));
    }
  } else {
    const int n = 200 + static_cast<int>(rng() % 200);
    for (int i = 0; i < n; ++i) {
      rows.push_back(Value::MakePair(
          I(static_cast<int64_t>(rng() % 17)),
          D(static_cast<double>(rng() % 500) / 8.0 - 20.0)));
    }
  }
  return rows;
}

TEST(ColumnarProperty, ColumnarMatchesBoxedByteForByte) {
  for (int which = 0; which < 4; ++which) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      std::mt19937_64 rng(seed * 7919 + which + 1);
      ValueVec rows = WorkloadInput(which, rng);
      const int parts = 1 + static_cast<int>(rng() % 12);
      for (int host_threads : {1, 4}) {
        for (bool fuse : {true, false}) {
          for (bool hash_agg : {true, false}) {
            EngineConfig col_config;
            col_config.num_partitions = parts;
            col_config.host_threads = host_threads;
            col_config.fuse_narrow = fuse;
            col_config.hash_aggregation = hash_agg;
            col_config.columnar = true;
            EngineConfig boxed_config = col_config;
            boxed_config.columnar = false;

            Engine columnar(col_config), boxed(boxed_config);
            auto col_out = RunWorkload(columnar, which, rows);
            auto boxed_out = RunWorkload(boxed, which, rows);
            ASSERT_TRUE(col_out.ok()) << col_out.status().ToString();
            ASSERT_TRUE(boxed_out.ok()) << boxed_out.status().ToString();
            EXPECT_EQ(*col_out, *boxed_out)
                << "workload " << which << " seed " << seed << " threads "
                << host_threads << " fuse " << fuse << " hash_agg "
                << hash_agg;
            EXPECT_EQ(boxed.metrics().total_columnar_batches(), 0);
          }
        }
      }
    }
  }
}

TEST(ColumnarProperty, CountersReportTypedExecution) {
  std::mt19937_64 rng(2026);
  ValueVec rows = WorkloadInput(/*which=*/3, rng);
  EngineConfig config;
  config.columnar = true;
  config.host_threads = 2;
  Engine engine(config);
  auto out = RunWorkload(engine, 3, rows);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Fused chains, shuffle scatters, typed combines and the typed fold
  // all count batches; nothing in this workload needs to fall back.
  EXPECT_GT(engine.metrics().total_columnar_batches(), 0);
  EXPECT_EQ(engine.metrics().total_columnar_rows_fallback(), 0);
}

TEST(ColumnarProperty, HeterogeneousRowsFallBackAndStayIdentical) {
  // Mixed int/double values demote the batch column to boxed: the fused
  // chain must replay per-row (counted as fallback) and still match the
  // boxed engine exactly.
  ValueVec rows;
  std::mt19937_64 rng(31);
  for (int i = 0; i < 300; ++i) {
    const Value v = i % 3 == 0 ? I(static_cast<int64_t>(rng() % 50))
                               : D(static_cast<double>(rng() % 50) * 0.5);
    rows.push_back(Value::MakePair(I(static_cast<int64_t>(rng() % 7)), v));
  }
  auto run = [&](bool columnar) {
    EngineConfig config;
    config.columnar = columnar;
    Engine engine(config);
    auto a = engine.MapValues(engine.Parallelize(rows), BinOp::kMul, D(2.0));
    EXPECT_TRUE(a.ok());
    auto b = engine.FilterValues(*a, BinOp::kGe, D(3.0));
    EXPECT_TRUE(b.ok());
    auto forced = engine.Force(*b);
    EXPECT_TRUE(forced.ok());
    auto out = engine.Collect(*forced);
    EXPECT_TRUE(out.ok());
    return std::make_pair(out.ok() ? *out : ValueVec{},
                          engine.metrics().total_columnar_rows_fallback());
  };
  auto [col_out, col_fallback] = run(true);
  auto [boxed_out, boxed_fallback] = run(false);
  ASSERT_FALSE(col_out.empty());
  EXPECT_EQ(col_out, boxed_out);
  EXPECT_GT(col_fallback, 0);
  EXPECT_EQ(boxed_fallback, 0);
}

TEST(ColumnarProperty, ColumnarUnderFaultsMatchesBoxedFaultFree) {
  // Fault schedules key off (stage id, partition, attempt, row index) —
  // coordinates the execution strategy does not change — so injected
  // task failures and shuffle corruption hit the columnar engine at the
  // same points and must never produce a divergent answer.
  // serialize_shuffles drives every shuffled row (and every columnar
  // batch tally) through the wire codec.
  for (int which = 0; which < 4; ++which) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      std::mt19937_64 rng(seed * 2741 + which + 11);
      ValueVec rows = WorkloadInput(which, rng);

      EngineConfig clean_config;
      clean_config.columnar = false;
      Engine clean(clean_config);
      auto expected = RunWorkload(clean, which, rows);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      EngineConfig faulty_config;
      faulty_config.columnar = true;
      faulty_config.host_threads = 4;
      faulty_config.faults.seed = seed + 17;
      faulty_config.faults.task_failure_rate = 0.08;
      faulty_config.faults.corrupt_shuffle_rate = 0.01;
      faulty_config.faults.max_task_attempts = 12;
      faulty_config.serialize_shuffles = true;
      Engine faulty(faulty_config);
      auto got = RunWorkload(faulty, which, rows);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *expected)
          << "workload " << which << " seed " << seed;
    }
  }
}

TEST(ColumnarProperty, LostPartitionRecoveryReplaysColumnarStages) {
  // Deterministic lost-partition directives drive the recompute_many
  // closures behind every columnar stage — including the boxed replay
  // closure the columnar Force registers — and the rebuilt partitions
  // must be byte-identical to both the clean columnar and the clean
  // boxed run.
  std::mt19937_64 rng(4242);
  ValueVec rows = WorkloadInput(/*which=*/3, rng);
  EngineConfig boxed_config;
  boxed_config.columnar = false;
  Engine boxed(boxed_config);
  auto expected = RunWorkload(boxed, 3, rows);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  int64_t fired = 0;
  for (int stage = 0; stage < 8; ++stage) {
    EngineConfig config;
    config.columnar = true;
    config.faults.lose_partitions.push_back({stage, 2, 0});
    Engine engine(config);
    auto got = RunWorkload(engine, 3, rows);
    ASSERT_TRUE(got.ok()) << "stage " << stage << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "stage " << stage;
    fired += engine.metrics().total_recomputed_partitions();
  }
  EXPECT_GE(fired, 3);
}

// ---------------------------------------------------------------------
// Distributed: columnar batches genuinely cross the wire, survive real
// worker kills, and still match the boxed single-process engine.

std::string Bytes(const ValueVec& rows) {
  std::string out;
  for (const Value& v : rows) out += Serialize(v);
  return out;
}

TEST(ColumnarDistTest, ColumnarOverWorkersMatchesBoxedLocal) {
  std::mt19937_64 rng(606);
  ValueVec rows = WorkloadInput(/*which=*/3, rng);
  EngineConfig boxed_config;
  boxed_config.columnar = false;
  Engine local(boxed_config);
  auto expected = RunWorkload(local, 3, rows);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  dist::DistConfig dist_config;
  dist_config.num_workers = 2;
  dist_config.heartbeat_ms = 50;
  dist::Coordinator coordinator(dist_config);
  EngineConfig config;
  config.columnar = true;
  config.remote = &coordinator;
  config.dist_lose_on_kill = true;
  Engine dist(config);
  auto got = RunWorkload(dist, 3, rows);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
  EXPECT_GT(dist.metrics().total_dist_tasks(), 0);
  // The batch tallies made the round trip from the forked workers.
  EXPECT_GT(dist.metrics().total_columnar_batches(), 0);
}

TEST(ColumnarDistTest, SurvivesChaosKillsWithIdenticalOutput) {
  std::mt19937_64 rng(607);
  ValueVec rows = WorkloadInput(/*which=*/3, rng);
  EngineConfig boxed_config;
  boxed_config.columnar = false;
  Engine local(boxed_config);
  auto expected = RunWorkload(local, 3, rows);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Two SIGKILLs mid-wave: redistribute, re-dispatch and lineage
  // recovery all replay columnar stages on the survivors.
  dist::DistConfig dist_config;
  dist_config.num_workers = 3;
  dist_config.heartbeat_ms = 50;
  dist_config.chaos.kills.push_back({/*stage=*/1, /*worker=*/0, 0});
  dist_config.chaos.kills.push_back({/*stage=*/4, /*worker=*/1, 1});
  dist::Coordinator coordinator(dist_config);
  EngineConfig config;
  config.columnar = true;
  config.remote = &coordinator;
  config.dist_lose_on_kill = true;
  Engine dist(config);
  auto got = RunWorkload(dist, 3, rows);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(*got), Bytes(*expected));
  EXPECT_EQ(coordinator.chaos_kills(), 2);
  EXPECT_GE(dist.metrics().total_dist_workers_lost(), 2);
}

}  // namespace
}  // namespace diablo::runtime
