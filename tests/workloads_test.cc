// Sanity tests for the benchmark workload generators: shapes, ranges,
// determinism under fixed seeds, and the per-program input contracts.

#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include <set>

#include "workloads/programs.h"

namespace diablo::bench {
namespace {

TEST(Workloads, RandomDoubleVectorShape) {
  std::mt19937_64 rng(1);
  Value v = RandomDoubleVector(100, 50.0, rng);
  ASSERT_TRUE(v.is_bag());
  ASSERT_EQ(v.bag().size(), 100u);
  for (const Value& row : v.bag()) {
    ASSERT_TRUE(row.tuple()[0].is_int());
    double x = row.tuple()[1].ToDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 50.0);
  }
}

TEST(Workloads, DeterministicUnderSeed) {
  std::mt19937_64 a(42), b(42), c(43);
  EXPECT_EQ(RandomDoubleVector(50, 10, a), RandomDoubleVector(50, 10, b));
  EXPECT_NE(RandomDoubleVector(50, 10, a), RandomDoubleVector(50, 10, c));
}

TEST(Workloads, StringsComeFromBoundedVocabulary) {
  std::mt19937_64 rng(5);
  Value v = RandomStringVector(500, 7, rng);
  std::set<std::string> seen;
  for (const Value& row : v.bag()) {
    seen.insert(row.tuple()[1].AsString());
  }
  EXPECT_LE(seen.size(), 7u);
  EXPECT_GE(seen.size(), 2u);
}

TEST(Workloads, ZipfPairsAreHeavyHitterSkewed) {
  std::mt19937_64 rng(9);
  const int64_t n = 20000;
  Value v = ZipfPairs(n, /*keys=*/1000, /*s=*/2.0, rng);
  ASSERT_TRUE(v.is_bag());
  ASSERT_EQ(v.bag().size(), static_cast<size_t>(n));
  int64_t top = 0;
  for (const Value& row : v.bag()) {
    ASSERT_TRUE(row.tuple()[0].is_int());
    int64_t rank = row.tuple()[0].AsInt();
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 1000);
    EXPECT_EQ(row.tuple()[1].AsInt(), 1);
    if (rank == 0) ++top;
  }
  // At s = 2 rank 0 holds ~ 1/zeta(2) ~ 61% of the mass: the heavy
  // hitter the skew mitigation benches (AB10) are built around.
  EXPECT_GT(top, n / 2);

  std::mt19937_64 a(4), b(4);
  EXPECT_EQ(ZipfPairs(500, 100, 1.1, a), ZipfPairs(500, 100, 1.1, b));
}

TEST(Workloads, PixelsHaveRgbFields) {
  std::mt19937_64 rng(5);
  Value v = RandomPixelVector(10, rng);
  for (const Value& row : v.bag()) {
    const Value& px = row.tuple()[1];
    ASSERT_TRUE(px.is_record());
    for (const char* f : {"red", "green", "blue"}) {
      ASSERT_NE(px.FindField(f), nullptr);
      int64_t c = px.FindField(f)->AsInt();
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 256);
    }
  }
}

TEST(Workloads, RegressionPointsFollowTheLine) {
  std::mt19937_64 rng(5);
  Value v = RegressionPoints(200, rng);
  for (const Value& row : v.bag()) {
    double x = row.tuple()[1].tuple()[0].ToDouble();
    double y = row.tuple()[1].tuple()[1].ToDouble();
    // (x+dx, x-dx): the sum is 2x in [0, 2000), the difference 2dx in
    // [0, 20).
    EXPECT_GE(x - y, 0.0);
    EXPECT_LT(x - y, 20.0);
    EXPECT_LT(x + y, 2020.0);
  }
}

TEST(Workloads, RmatGraphWithinVertexBounds) {
  std::mt19937_64 rng(5);
  Value g = RmatGraph(/*scale=*/5, /*edges_per_vertex=*/10, rng);
  const int64_t vertices = 32;
  std::set<Value> keys;
  for (const Value& row : g.bag()) {
    int64_t i = row.tuple()[0].tuple()[0].AsInt();
    int64_t j = row.tuple()[0].tuple()[1].AsInt();
    EXPECT_GE(i, 0);
    EXPECT_LT(i, vertices);
    EXPECT_GE(j, 0);
    EXPECT_LT(j, vertices);
    EXPECT_TRUE(keys.insert(row.tuple()[0]).second) << "duplicate edge";
  }
  // Deduplicated, so at most vertices^2 and at most the attempts.
  EXPECT_LE(static_cast<int64_t>(g.bag().size()), vertices * 10);
  EXPECT_GT(g.bag().size(), 0u);
}

TEST(Workloads, RmatIsSkewed) {
  // The Kronecker parameters favour low vertex ids: the low corner of
  // the id space sends far more edges than the high corner.
  std::mt19937_64 rng(7);
  const int64_t vertices = 512;
  Value g = RmatGraph(/*scale=*/9, /*edges_per_vertex=*/5, rng);
  int64_t low_eighth = 0, high_eighth = 0;
  for (const Value& row : g.bag()) {
    int64_t src = row.tuple()[0].tuple()[0].AsInt();
    if (src < vertices / 8) ++low_eighth;
    if (src >= vertices - vertices / 8) ++high_eighth;
  }
  // With a=0.30, b=0.25, c=0.25, d=0.20 the row marginal is 0.55/0.45
  // per bit, i.e. a (0.55/0.45)^3 ≈ 1.8x gap between the extreme
  // eighths of the id space.
  EXPECT_GT(static_cast<double>(low_eighth),
            1.4 * static_cast<double>(std::max<int64_t>(1, high_eighth)));
}

TEST(Workloads, GridPointsInsideTheirSquares) {
  std::mt19937_64 rng(5);
  Value pts = GridPoints(300, /*grid=*/10, rng);
  for (const Value& row : pts.bag()) {
    double x = row.tuple()[1].tuple()[0].ToDouble();
    double y = row.tuple()[1].tuple()[1].ToDouble();
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 20.0);
    EXPECT_GE(y, 1.0);
    EXPECT_LE(y, 20.0);
  }
}

TEST(Workloads, GridCentroidsMatchThePaper) {
  Value c = GridCentroids(10);
  ASSERT_EQ(c.bag().size(), 100u);
  // (i*2 + 1.2, j*2 + 1.2); centroid 0 is (1.2, 1.2).
  EXPECT_DOUBLE_EQ(c.bag()[0].tuple()[1].tuple()[0].AsDouble(), 1.2);
  EXPECT_DOUBLE_EQ(c.bag()[0].tuple()[1].tuple()[1].AsDouble(), 1.2);
}

TEST(Workloads, SparseMatrixDensity) {
  std::mt19937_64 rng(5);
  Value m = SparseRandomMatrix(100, 100, 0.1, rng);
  double density = static_cast<double>(m.bag().size()) / 10000.0;
  EXPECT_GT(density, 0.05);
  EXPECT_LT(density, 0.15);
  for (const Value& row : m.bag()) {
    double v = row.tuple()[1].ToDouble();
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 5.0);
  }
}

TEST(Programs, EverySpecBuildsInputsAndCompiles) {
  for (const ProgramSpec& spec : BenchmarkPrograms()) {
    std::mt19937_64 rng(3);
    int64_t scale = spec.name == "pagerank" ? 4 : 8;
    Bindings inputs = spec.make_inputs(scale, rng);
    EXPECT_FALSE(inputs.empty()) << spec.name;
    auto compiled = Compile(spec.source);
    EXPECT_TRUE(compiled.ok())
        << spec.name << ": " << compiled.status().ToString();
    // Outputs are named.
    EXPECT_FALSE(spec.scalar_outputs.empty() && spec.array_outputs.empty())
        << spec.name;
  }
}

TEST(Programs, Table1CoversAllBenchmarks) {
  std::set<std::string> table1;
  for (const auto& entry : Table1Programs()) table1.insert(entry.name);
  for (const ProgramSpec& spec : BenchmarkPrograms()) {
    if (spec.name == "group_by" || spec.name == "matrix_addition" ||
        spec.name == "conditional_sum") {
      continue;  // Table 1 lists a slightly different program set
    }
    EXPECT_TRUE(table1.count(spec.name) != 0 ||
                spec.name == "group_by")
        << spec.name;
  }
  EXPECT_EQ(table1.size(), 16u);
}

}  // namespace
}  // namespace diablo::bench
