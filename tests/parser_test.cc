// Unit tests for the loop-language parser: statement forms of Figure 1,
// expression precedence, incremental-update operators, types, and error
// reporting.

#include "parser/parser.h"

#include <gtest/gtest.h>

#include "ast/printer.h"

#include <random>

namespace diablo::parser {
namespace {

using ast::Expr;
using ast::Stmt;

std::string RoundTripExpr(const std::string& src) {
  auto e = ParseExpr(src);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return e.ok() ? (*e)->ToString() : "";
}

ast::Program MustParse(const std::string& src) {
  auto p = ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? *p : ast::Program{};
}

TEST(Parser, Precedence) {
  EXPECT_EQ(RoundTripExpr("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(RoundTripExpr("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(RoundTripExpr("a < b && c < d || e"),
            "(((a < b) && (c < d)) || e)");
  EXPECT_EQ(RoundTripExpr("-a * b"), "(-a * b)");
  EXPECT_EQ(RoundTripExpr("!p && q"), "(!p && q)");
  EXPECT_EQ(RoundTripExpr("a - b - c"), "((a - b) - c)");
  EXPECT_EQ(RoundTripExpr("a % b / c"), "((a % b) / c)");
}

TEST(Parser, IndexingAndProjection) {
  EXPECT_EQ(RoundTripExpr("M[i,j]"), "M[i,j]");
  EXPECT_EQ(RoundTripExpr("V[W[i]]"), "V[W[i]]");
  EXPECT_EQ(RoundTripExpr("A[i].K"), "A[i].K");
  EXPECT_EQ(RoundTripExpr("p._1 + p._2"), "(p._1 + p._2)");
  EXPECT_EQ(RoundTripExpr("closest[i]._2"), "closest[i]._2");
}

TEST(Parser, TuplesRecordsCalls) {
  EXPECT_EQ(RoundTripExpr("(a, b, 1)"), "(a,b,1)");
  EXPECT_EQ(RoundTripExpr("(a)"), "a");  // parenthesized, not 1-tuple
  EXPECT_EQ(RoundTripExpr("<A = 1, B = x>"), "<A=1,B=x>");
  EXPECT_EQ(RoundTripExpr("sqrt(x * x)"), "sqrt((x * x))");
  EXPECT_EQ(RoundTripExpr("min(a, b)"), "(a min b)");
  EXPECT_EQ(RoundTripExpr("argmin(a, b)"), "(a argmin b)");
}

TEST(Parser, AssignmentForms) {
  ast::Program p = MustParse(R"(
    x := 1;
    V[i] += 2;
    V[i] *= 3;
    V[i] -= 4;
    lo min= v;
    hi max= v;
    best argmin= (d, j);
  )");
  ASSERT_EQ(p.stmts.size(), 7u);
  EXPECT_TRUE(p.stmts[0]->is<Stmt::Assign>());
  EXPECT_TRUE(p.stmts[1]->is<Stmt::Incr>());
  EXPECT_EQ(p.stmts[1]->as<Stmt::Incr>().op, runtime::BinOp::kAdd);
  EXPECT_EQ(p.stmts[2]->as<Stmt::Incr>().op, runtime::BinOp::kMul);
  // -= desugars to += -(e).
  EXPECT_EQ(p.stmts[3]->as<Stmt::Incr>().op, runtime::BinOp::kAdd);
  EXPECT_TRUE(p.stmts[3]->as<Stmt::Incr>().value->is<Expr::Un>());
  EXPECT_EQ(p.stmts[4]->as<Stmt::Incr>().op, runtime::BinOp::kMin);
  EXPECT_EQ(p.stmts[5]->as<Stmt::Incr>().op, runtime::BinOp::kMax);
  EXPECT_EQ(p.stmts[6]->as<Stmt::Incr>().op, runtime::BinOp::kArgmin);
}

TEST(Parser, LoopsAndConditionals) {
  ast::Program p = MustParse(R"(
    for i = 0, n - 1 do
      for j in V do
        if (j < 0) x += j; else y += j;
    while (k < 10)
      k += 1;
  )");
  ASSERT_EQ(p.stmts.size(), 2u);
  ASSERT_TRUE(p.stmts[0]->is<Stmt::ForRange>());
  const auto& outer = p.stmts[0]->as<Stmt::ForRange>();
  EXPECT_EQ(outer.var, "i");
  ASSERT_TRUE(outer.body->is<Stmt::ForEach>());
  const auto& inner = outer.body->as<Stmt::ForEach>();
  ASSERT_TRUE(inner.body->is<Stmt::If>());
  EXPECT_NE(inner.body->as<Stmt::If>().else_branch, nullptr);
  EXPECT_TRUE(p.stmts[1]->is<Stmt::While>());
}

TEST(Parser, Declarations) {
  ast::Program p = MustParse(R"(
    var x: double = 0.5;
    var C: map[string,int] = map();
    var M: matrix[double] = matrix();
    var t: (int, double);
    var r: <A: int, B: double>;
  )");
  ASSERT_EQ(p.stmts.size(), 5u);
  const auto& c = p.stmts[1]->as<Stmt::Decl>();
  EXPECT_TRUE(c.type->IsCollection());
  EXPECT_EQ(c.type->IndexArity(), 1);
  const auto& m = p.stmts[2]->as<Stmt::Decl>();
  EXPECT_EQ(m.type->IndexArity(), 2);
  EXPECT_EQ(p.stmts[3]->as<Stmt::Decl>().type->ToString(), "(int,double)");
  EXPECT_EQ(p.stmts[4]->as<Stmt::Decl>().type->ToString(),
            "<A:int,B:double>");
}

TEST(Parser, BlocksWithOptionalTrailingSemicolon) {
  ast::Program p = MustParse(R"(
    for i = 0, 9 do {
      x += 1;
      y += 2;
    };
  )");
  ASSERT_EQ(p.stmts.size(), 1u);
  const auto& body = p.stmts[0]->as<Stmt::ForRange>().body;
  ASSERT_TRUE(body->is<Stmt::Block>());
  EXPECT_EQ(body->as<Stmt::Block>().stmts.size(), 2u);
}

TEST(Parser, PaperMatrixMultiplication) {
  // The running example from the introduction parses as written.
  ast::Program p = MustParse(R"(
    for i = 0, d-1 do
      for j = 0, d-1 do {
        R[i,j] := 0;
        for k = 0, d-1 do
          R[i,j] += M[i,k]*N[k,j];
      }
  )");
  ASSERT_EQ(p.stmts.size(), 1u);
}

TEST(Parser, ErrorsCarryLocations) {
  auto p = ParseProgram("for i = 0 do x += 1;");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kParseError);
  EXPECT_NE(p.status().message().find("line 1"), std::string::npos);

  auto q = ParseProgram("x : = 3;");
  EXPECT_FALSE(q.ok());

  auto r = ParseProgram("{ x += 1;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unterminated"), std::string::npos);
}

TEST(Parser, RejectsTrailingGarbageInExpr) {
  EXPECT_FALSE(ParseExpr("a + b extra").ok());
}

TEST(Parser, RobustAgainstRandomInput) {
  // Fuzz-ish smoke test: random character soup must produce a Status,
  // never a crash or a hang.
  std::mt19937_64 rng(20200321);
  const char kCharset[] = "abixV[](){}.,;:=+-*/<>&|!\"0123456789 \nfor";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string src;
    size_t len = rng() % 64;
    for (size_t i = 0; i < len; ++i) {
      src.push_back(kCharset[rng() % (sizeof(kCharset) - 1)]);
    }
    auto p = ParseProgram(src);
    if (p.ok()) {
      // Whatever parsed must print and re-parse.
      auto again = ParseProgram(ast::PrintProgram(*p));
      EXPECT_TRUE(again.ok()) << src;
    }
  }
}

TEST(Parser, RobustAgainstTruncations) {
  // Every prefix of a real program parses or errors cleanly.
  const std::string src = R"(
    var C: map[string,int] = map();
    for w in words do
      if (w == "key1")
        C[w] += 1;
  )";
  for (size_t cut = 0; cut <= src.size(); cut += 3) {
    auto p = ParseProgram(src.substr(0, cut));
    (void)p;  // must not crash
  }
}

TEST(Parser, NestedStatementsCarrySourceLocations) {
  // Diagnostics anchor on statement/expression/lvalue locations, so the
  // parser must stamp real positions on nested nodes, not defaults.
  const std::string src =
      "var n: int = 4;\n"
      "for i = 0, 9 do {\n"
      "  for j = 0, 9 do\n"
      "    M[i,j] := A[i] * B[j];\n"
      "  s += M[i,i];\n"
      "}\n";
  ast::Program prog = MustParse(src);
  ASSERT_EQ(prog.stmts.size(), 2u);
  EXPECT_EQ(prog.stmts[0]->loc.line, 1);
  const auto& outer = std::get<Stmt::ForRange>(prog.stmts[1]->node);
  EXPECT_EQ(prog.stmts[1]->loc.line, 2);
  const auto& block = std::get<Stmt::Block>(outer.body->node);
  ASSERT_EQ(block.stmts.size(), 2u);

  // Inner for-loop on line 3, its assignment body on line 4.
  const auto& inner = std::get<Stmt::ForRange>(block.stmts[0]->node);
  EXPECT_EQ(block.stmts[0]->loc.line, 3);
  const auto& assign = std::get<Stmt::Assign>(inner.body->node);
  EXPECT_EQ(inner.body->loc.line, 4);
  EXPECT_EQ(assign.dest->loc.line, 4);
  EXPECT_GE(assign.dest->loc.column, 1);
  EXPECT_EQ(assign.value->loc.line, 4);
  // The rhs's nested lvalue reads carry their own positions too.
  const auto& mul = std::get<Expr::Bin>(assign.value->node);
  EXPECT_EQ(mul.lhs->loc.line, 4);
  EXPECT_EQ(mul.rhs->loc.line, 4);
  EXPECT_GT(mul.rhs->loc.column, mul.lhs->loc.column);

  // Increment statement on line 5.
  const auto& incr = std::get<Stmt::Incr>(block.stmts[1]->node);
  EXPECT_EQ(block.stmts[1]->loc.line, 5);
  EXPECT_EQ(incr.dest->loc.line, 5);
  EXPECT_EQ(incr.value->loc.line, 5);
}

}  // namespace
}  // namespace diablo::parser
