// Tests for the Figure-2 translation rules, following the paper's worked
// derivations (§3.4, §3.9). Rule outputs are compared after
// normalization, which performs the same unnesting steps the paper does
// by hand.

#include "translate/translate.h"

#include <gtest/gtest.h>

#include "normalize/normalize.h"
#include "parser/parser.h"

namespace diablo::translate {
namespace {

using comp::CExpr;

std::map<std::string, VarInfo> ArrayVars(std::vector<std::string> names) {
  std::map<std::string, VarInfo> vars;
  for (const std::string& n : names) vars[n].is_array = true;
  return vars;
}

std::string NormalizedE(const std::string& expr_src,
                        std::vector<std::string> arrays) {
  auto e = parser::ParseExpr(expr_src);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  Rules rules(ArrayVars(std::move(arrays)));
  auto lifted = rules.E(**e);
  EXPECT_TRUE(lifted.ok()) << lifted.status().ToString();
  comp::NameGen names("t");
  return normalize::NormalizeExpr(*lifted, &names)->ToString();
}

TEST(RuleE, ConstantsLiftToSingletons) {
  EXPECT_EQ(NormalizedE("42", {}), "{42}");
  EXPECT_EQ(NormalizedE("true", {}), "{true}");
}

TEST(RuleE, VariableLiftsToSingleton) {
  EXPECT_EQ(NormalizedE("x", {}), "{x}");
}

TEST(RuleE, MatrixIndexing) {
  // Paper §3.8: E[M[1,2]] = { v | ((i,j),v) <- M, i = 1, j = 2 }.
  std::string out = NormalizedE("M[1,2]", {"M"});
  EXPECT_NE(out.find("<- M"), std::string::npos) << out;
  EXPECT_NE(out.find("== 1)"), std::string::npos) << out;
  EXPECT_NE(out.find("== 2)"), std::string::npos) << out;
}

TEST(RuleE, ProductOfMatrixAccessesBecomesJoinShape) {
  // §3.4: M[i,k]*N[k,j] normalizes to a single comprehension over both
  // matrices with equality conditions — the join form.
  std::string out = NormalizedE("M[i,k] * N[k,j]", {"M", "N"});
  EXPECT_NE(out.find("<- M"), std::string::npos) << out;
  EXPECT_NE(out.find("<- N"), std::string::npos) << out;
  // The head multiplies the two matrix values.
  EXPECT_NE(out.find(" * "), std::string::npos) << out;
  // No nested comprehension braces beyond the outer one: flattened.
  EXPECT_EQ(out.find("{", 1), std::string::npos) << out;
}

TEST(RuleK, Shapes) {
  Rules rules(ArrayVars({"V", "M"}));
  auto parse_dest = [](const std::string& s) {
    auto p = parser::ParseProgram(s + " := 0;");
    EXPECT_TRUE(p.ok());
    return p->stmts[0]->as<ast::Stmt::Assign>().dest;
  };
  comp::NameGen names("t");
  // K[n] = {()}.
  auto k_scalar = rules.K(*parse_dest("n"));
  ASSERT_TRUE(k_scalar.ok());
  EXPECT_EQ(normalize::NormalizeExpr(*k_scalar, &names)->ToString(), "{()}");
  // K[V[i]] = E[i] = {i}.
  auto k_vec = rules.K(*parse_dest("V[i]"));
  ASSERT_TRUE(k_vec.ok());
  EXPECT_EQ(normalize::NormalizeExpr(*k_vec, &names)->ToString(), "{i}");
  // K[M[i,j]] = {(i,j)}.
  auto k_mat = rules.K(*parse_dest("M[i,j]"));
  ASSERT_TRUE(k_mat.ok());
  EXPECT_EQ(normalize::NormalizeExpr(*k_mat, &names)->ToString(), "{(i,j)}");
  // K[d.A] = K[d].
  auto k_proj = rules.K(*parse_dest("V[i].A"));
  ASSERT_TRUE(k_proj.ok());
  EXPECT_EQ(normalize::NormalizeExpr(*k_proj, &names)->ToString(), "{i}");
}

TEST(RuleD, RecoversValueFromKey) {
  Rules rules(ArrayVars({"V"}));
  auto p = parser::ParseProgram("V[i] := 0;");
  ASSERT_TRUE(p.ok());
  auto d = rules.D(*p->stmts[0]->as<ast::Stmt::Assign>().dest,
                   comp::MakeVar("k"));
  ASSERT_TRUE(d.ok());
  // D[V[i]](k) = { v | (i,v) <- V, i = k }.
  std::string out = (*d)->ToString();
  EXPECT_NE(out.find("<- V"), std::string::npos) << out;
  EXPECT_NE(out.find("== k"), std::string::npos) << out;
}

// ----------------------- whole-statement translations ----------------------

std::string TranslateAndNormalize(const std::string& src) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto result = Translate(*p);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  comp::NameGen names("t");
  return normalize::NormalizeTarget(result->program, &names).ToString();
}

TEST(RuleS, NonIncrementalVectorCopy) {
  // §3.9 example 1: for i = 1,10 do V[i] := W[i]
  //   => V := V ⊳ { (i,w) | i <- range(1,10), (j,w) <- W, j = i }.
  std::string out = TranslateAndNormalize("for i = 1, 10 do V[i] := W[i];");
  EXPECT_NE(out.find("V := V <| "), std::string::npos) << out;
  EXPECT_NE(out.find("range(1,10)"), std::string::npos) << out;
  EXPECT_NE(out.find("<- W"), std::string::npos) << out;
}

TEST(RuleS, IncrementalIndirectUpdate) {
  // §3.9 example 2: for i = 1,10 do W[K[i]] += V[i] becomes a group-by
  // comprehension merged into W with +.
  std::string out =
      TranslateAndNormalize("for i = 1, 10 do W[K[i]] += V[i];");
  EXPECT_NE(out.find("W := W <|+ "), std::string::npos) << out;
  EXPECT_NE(out.find("group by"), std::string::npos) << out;
  EXPECT_NE(out.find("+/"), std::string::npos) << out;
  EXPECT_NE(out.find("<- K"), std::string::npos) << out;
  EXPECT_NE(out.find("<- V"), std::string::npos) << out;
}

TEST(RuleS, ScalarIncrementGetsUnitGroup) {
  std::string out = TranslateAndNormalize(R"(
    var n: int = 0;
    for v in W do n += v;
  )");
  // n := { n + (+/...) | ... } with the group-by on () (later removed by
  // Rule 16, which is not run here).
  EXPECT_NE(out.find("n := "), std::string::npos) << out;
  EXPECT_NE(out.find("group by"), std::string::npos) << out;
}

TEST(RuleS, WhileLoopsStaySequential) {
  std::string out = TranslateAndNormalize(R"(
    var k: int = 0;
    while (k < 10) k += 1;
  )");
  EXPECT_NE(out.find("while ("), std::string::npos) << out;
}

TEST(RuleS, IfSplitsIntoGuardedStatements) {
  std::string out = TranslateAndNormalize(R"(
    var a: int = 0;
    var b: int = 0;
    for v in V do
      if (v > 0.0) a += 1; else b += 1;
  )");
  // Both branches appear as separate guarded assignments (15g).
  EXPECT_NE(out.find("a := "), std::string::npos) << out;
  EXPECT_NE(out.find("b := "), std::string::npos) << out;
  EXPECT_NE(out.find("!"), std::string::npos) << out;
}

TEST(RuleS, MatrixMultiplicationMatchesIntroduction) {
  // The introduction's headline translation: R gets one bulk assignment
  // with a join between M and N and a group-by over (i,j).
  std::string out = TranslateAndNormalize(R"(
    var R: matrix[double] = matrix();
    for i = 0, 9 do
      for j = 0, 9 do {
        R[i,j] := 0.0;
        for k = 0, 9 do
          R[i,j] += M[i,k]*N[k,j];
      }
  )");
  EXPECT_NE(out.find("R := R <|+ "), std::string::npos) << out;
  EXPECT_NE(out.find("<- M"), std::string::npos) << out;
  EXPECT_NE(out.find("<- N"), std::string::npos) << out;
  EXPECT_NE(out.find("group by"), std::string::npos) << out;
}

TEST(RuleS, UnsupportedConstructsAreReported) {
  auto p = parser::ParseProgram("for v in V do { while (v > 0.0) x += 1; }");
  ASSERT_TRUE(p.ok());
  auto result = Translate(*p);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(InferVars, ClassifiesNames) {
  auto p = parser::ParseProgram(R"(
    var n: int = 0;
    var C: map[int,int] = map();
    for v in V do
      C[M[v,v]] += n;
  )");
  ASSERT_TRUE(p.ok());
  auto vars = InferVars(*p);
  EXPECT_FALSE(vars.at("n").is_array);
  EXPECT_TRUE(vars.at("n").declared);
  EXPECT_TRUE(vars.at("C").is_array);
  EXPECT_TRUE(vars.at("V").is_array);   // for-in domain
  EXPECT_TRUE(vars.at("M").is_array);   // indexed
  EXPECT_FALSE(vars.at("V").declared);  // host input
}

}  // namespace
}  // namespace diablo::translate
