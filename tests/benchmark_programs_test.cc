// Validates all 12 evaluation programs (paper §6 / Appendix B) at small
// scale: the DIABLO-translated distributed execution must agree with the
// sequential reference interpreter, and with the hand-written engine
// implementations where outputs are directly comparable.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workloads/harness.h"
#include "workloads/programs.h"

namespace diablo::testing {
namespace {

using bench::GetProgram;
using bench::ProgramSpec;

int64_t SmallScale(const std::string& name) {
  if (name == "matrix_addition") return 8;
  if (name == "matrix_multiplication") return 6;
  if (name == "pagerank") return 4;  // RMAT scale: 16 vertices
  if (name == "kmeans") return 60;
  if (name == "matrix_factorization") return 8;
  return 200;
}

class BenchmarkProgramTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkProgramTest, DiabloMatchesReference) {
  const ProgramSpec& spec = GetProgram(GetParam());
  std::mt19937_64 rng(42);
  Bindings inputs = spec.make_inputs(SmallScale(spec.name), rng);
  PipelineChecker checker(spec.source, inputs);
  for (const std::string& name : spec.scalar_outputs) {
    checker.ExpectScalarAgrees(name, spec.tolerance);
  }
  for (const std::string& name : spec.array_outputs) {
    checker.ExpectArrayAgrees(name, spec.tolerance);
  }
}

TEST_P(BenchmarkProgramTest, CompilesWithoutOptimizer) {
  const ProgramSpec& spec = GetProgram(GetParam());
  CompileOptions options;
  options.enable_optimizer = false;
  auto compiled = Compile(spec.source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
}

TEST_P(BenchmarkProgramTest, UnoptimizedExecutionMatchesReference) {
  // The optimizer is a pure performance layer: the unoptimized target
  // code must compute the same results (at tiny scale — unoptimized
  // plans carry every range join and group-by).
  const ProgramSpec& spec = GetProgram(GetParam());
  std::mt19937_64 rng(31);
  int64_t scale = SmallScale(spec.name) / 2 + 2;
  Bindings inputs = spec.make_inputs(scale, rng);
  CompileOptions options;
  options.enable_optimizer = false;
  auto compiled = Compile(spec.source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  runtime::Engine engine;
  auto run = ::diablo::Run(*compiled, &engine, inputs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto reference = RunReference(spec.source, inputs);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const std::string& name : spec.scalar_outputs) {
    auto got = run->Scalar(name);
    auto want = (*reference)->GetScalar(name);
    ASSERT_TRUE(got.ok() && want.ok()) << name;
    EXPECT_TRUE(runtime::AlmostEquals(*got, *want, spec.tolerance)) << name;
  }
  for (const std::string& name : spec.array_outputs) {
    auto got = run->Array(name);
    auto want = (*reference)->GetArray(name);
    ASSERT_TRUE(got.ok() && want.ok()) << name;
    EXPECT_TRUE(runtime::BagAlmostEquals(*got, *want, spec.tolerance))
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, BenchmarkProgramTest,
    ::testing::Values("conditional_sum", "equal", "string_match",
                      "word_count", "histogram", "linear_regression",
                      "group_by", "matrix_addition", "matrix_multiplication",
                      "pagerank", "kmeans", "matrix_factorization"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

class HandwrittenAgreementTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(HandwrittenAgreementTest, HandwrittenMatchesDiablo) {
  const ProgramSpec& spec = GetProgram(GetParam());
  std::mt19937_64 rng(7);
  Bindings inputs = spec.make_inputs(SmallScale(spec.name), rng);
  runtime::EngineConfig config;

  auto diablo_stats = bench::RunDiablo(spec, inputs, config);
  ASSERT_TRUE(diablo_stats.ok()) << diablo_stats.status().ToString();
  auto hw_stats = bench::MeasureHandwritten(spec, inputs, config);
  ASSERT_TRUE(hw_stats.ok()) << hw_stats.status().ToString();

  const Value& expected = diablo_stats->output;
  const Value& got = hw_stats->output;
  if (expected.is_bag()) {
    EXPECT_TRUE(runtime::BagAlmostEquals(got, expected, 1e-6))
        << "handwritten: " << got.ToString()
        << "\nDIABLO: " << expected.ToString();
  } else {
    EXPECT_TRUE(runtime::AlmostEquals(got, expected, 1e-6))
        << "handwritten: " << got.ToString()
        << "\nDIABLO: " << expected.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ComparablePrograms, HandwrittenAgreementTest,
    ::testing::Values("conditional_sum", "equal", "string_match",
                      "word_count", "group_by", "matrix_addition",
                      "matrix_multiplication", "pagerank", "kmeans",
                      "matrix_factorization"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace diablo::testing
