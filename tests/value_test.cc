// Unit tests for runtime::Value: construction, equality, ordering,
// hashing, serialization sizes and printing.

#include "runtime/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace diablo::runtime {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_unit());
  EXPECT_TRUE(Value::MakeBool(true).AsBool());
  EXPECT_EQ(Value::MakeInt(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::MakeDouble(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::MakeString("abc").AsString(), "abc");
  Value t = Value::MakeTuple({Value::MakeInt(1), Value::MakeInt(2)});
  ASSERT_TRUE(t.is_tuple());
  EXPECT_EQ(t.tuple().size(), 2u);
  Value b = Value::MakeBag({Value::MakeInt(1)});
  ASSERT_TRUE(b.is_bag());
  EXPECT_EQ(b.bag().size(), 1u);
}

TEST(Value, ToDoubleWidensInts) {
  EXPECT_DOUBLE_EQ(Value::MakeInt(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::MakeDouble(3.5).ToDouble(), 3.5);
}

TEST(Value, StructuralEquality) {
  Value a = Value::MakePair(Value::MakeInt(1), Value::MakeString("x"));
  Value b = Value::MakePair(Value::MakeInt(1), Value::MakeString("x"));
  Value c = Value::MakePair(Value::MakeInt(2), Value::MakeString("x"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Int and Double are different kinds under structural equality.
  EXPECT_NE(Value::MakeInt(1), Value::MakeDouble(1.0));
}

TEST(Value, TotalOrderIsConsistent) {
  ValueVec values = {
      Value::MakeUnit(),
      Value::MakeBool(false),
      Value::MakeInt(-5),
      Value::MakeInt(7),
      Value::MakeDouble(1.5),
      Value::MakeString("a"),
      Value::MakeString("b"),
      Value::MakeTuple({Value::MakeInt(1)}),
      Value::MakeTuple({Value::MakeInt(1), Value::MakeInt(2)}),
  };
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].Compare(values[i]), 0) << i;
    for (size_t j = 0; j < values.size(); ++j) {
      int ij = values[i].Compare(values[j]);
      int ji = values[j].Compare(values[i]);
      EXPECT_EQ(ij, -ji) << i << "," << j;  // antisymmetry
    }
  }
  // Tuples order lexicographically, then by length.
  EXPECT_LT(Value::MakeTuple({Value::MakeInt(1)}),
            Value::MakeTuple({Value::MakeInt(1), Value::MakeInt(0)}));
  EXPECT_LT(Value::MakeTuple({Value::MakeInt(1), Value::MakeInt(9)}),
            Value::MakeTuple({Value::MakeInt(2)}));
}

TEST(Value, HashAgreesWithEquality) {
  Value a = Value::MakeTuple({Value::MakeInt(3), Value::MakeString("k")});
  Value b = Value::MakeTuple({Value::MakeInt(3), Value::MakeString("k")});
  EXPECT_EQ(a.Hash(), b.Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
}

TEST(Value, RecordFieldLookup) {
  Value r = Value::MakeRecord({{"red", Value::MakeInt(1)},
                               {"green", Value::MakeInt(2)}});
  ASSERT_NE(r.FindField("green"), nullptr);
  EXPECT_EQ(r.FindField("green")->AsInt(), 2);
  EXPECT_EQ(r.FindField("blue"), nullptr);
}

TEST(Value, SerializedBytes) {
  EXPECT_EQ(Value::MakeInt(1).SerializedBytes(), 8);
  EXPECT_EQ(Value::MakeDouble(1).SerializedBytes(), 8);
  EXPECT_EQ(Value::MakeString("abcd").SerializedBytes(), 8);
  // Pair of (long,long) tuple and double mirrors the paper's accounting
  // shape: nested sizes accumulate.
  Value row = Value::MakePair(
      Value::MakeTuple({Value::MakeInt(0), Value::MakeInt(0)}),
      Value::MakeDouble(1));
  EXPECT_EQ(row.SerializedBytes(), 4 + (4 + 8 + 8) + 8);
}

TEST(Value, Printing) {
  EXPECT_EQ(Value::MakeUnit().ToString(), "()");
  EXPECT_EQ(Value::MakeBool(true).ToString(), "true");
  EXPECT_EQ(Value::MakeString("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::MakePair(Value::MakeInt(1), Value::MakeInt(2)).ToString(),
            "(1,2)");
  EXPECT_EQ(Value::MakeBag({Value::MakeInt(1), Value::MakeInt(2)}).ToString(),
            "{1,2}");
  EXPECT_EQ(
      Value::MakeRecord({{"a", Value::MakeInt(1)}}).ToString(), "<a=1>");
}

TEST(Value, CopyIsShallowAndCheap) {
  ValueVec big;
  for (int i = 0; i < 1000; ++i) big.push_back(Value::MakeInt(i));
  Value bag = Value::MakeBag(std::move(big));
  Value copy = bag;  // shares the payload
  EXPECT_EQ(&bag.bag(), &copy.bag());
}

}  // namespace
}  // namespace diablo::runtime
