// Hash-aggregation and worker-pool property tests.
//
// The engine's wide operators aggregate through the open-addressing
// KeyedAccumulator (hash_aggregation = true, the default) instead of the
// ordered std::map path. The contract: results are byte-identical to the
// ordered path for every workload, partition count, host thread count,
// fusion setting and fault schedule — hash-table iteration order must
// never be observable. The persistent work-stealing pool carries a
// matching contract: every index runs exactly once and a failing wave
// reports the error of the lowest-indexed failing task no matter how
// many threads raced.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/fault.h"
#include "runtime/keyed_accumulator.h"
#include "runtime/worker_pool.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }
Value S(const std::string& v) { return Value::MakeString(v); }

// ---------------------------------------------------------------------
// KeyedAccumulator unit tests.

TEST(KeyedAccumulator, FindOrCreateGroupsAndGrows) {
  // Start far below the final key count so Grow() runs several times;
  // growth must keep every cached-hash bucket reachable.
  KeyedAccumulator<int64_t> acc(/*expected_keys=*/0);
  for (int64_t i = 0; i < 500; ++i) {
    const Value key = I(i % 101);
    auto ref = acc.FindOrCreate(key.Hash(), key);
    if (ref.inserted) ref.payload = 0;
    ref.payload += 1;
  }
  EXPECT_EQ(acc.size(), 101u);
  for (int64_t k = 0; k < 101; ++k) {
    const Value key = I(k);
    int64_t* count = acc.Find(key.Hash(), key);
    ASSERT_NE(count, nullptr) << "key " << k;
    // 500 draws over 101 keys: keys 0..95 appear 5 times, the rest 4.
    EXPECT_EQ(*count, k < 96 ? 5 : 4) << "key " << k;
  }
  const Value absent = I(101);
  EXPECT_EQ(acc.Find(absent.Hash(), absent), nullptr);
}

TEST(KeyedAccumulator, SortByKeyCanonicalizesAndStaysUsable) {
  KeyedAccumulator<int64_t> acc;
  std::mt19937_64 rng(7);
  std::vector<int64_t> keys{9, 3, 14, 0, 7, 11, 2};
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int64_t k : keys) {
    const Value key = I(k);
    acc.FindOrCreate(key.Hash(), key).payload = k * 10;
  }
  acc.SortByKey();
  std::sort(keys.begin(), keys.end());
  ASSERT_EQ(acc.entries().size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(acc.entries()[i].key, I(keys[i]));
  }
  // The probe table is rebuilt after the sort: lookups still hit.
  for (int64_t k : keys) {
    const Value key = I(k);
    int64_t* payload = acc.Find(key.Hash(), key);
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(*payload, k * 10);
  }
}

TEST(KeyedAccumulator, StructuralKeysCompareByValueNotHash) {
  // Tuple keys exercise the equality fallback behind the hash compare.
  KeyedAccumulator<ValueVec> acc;
  for (int round = 0; round < 3; ++round) {
    for (int64_t a = 0; a < 8; ++a) {
      const Value key = Value::MakePair(I(a), S("k" + std::to_string(a % 3)));
      acc.FindOrCreate(key.Hash(), key).payload.push_back(I(round));
    }
  }
  EXPECT_EQ(acc.size(), 8u);
  for (auto& e : acc.entries()) EXPECT_EQ(e.payload.size(), 3u);
}

// ---------------------------------------------------------------------
// WorkerPool unit tests.

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  for (int wave = 0; wave < 20; ++wave) {
    const int n = 1 + wave * 37;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    Status st = pool.Run(n, [&](int i) -> Status {
      hits[i].fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "wave " << wave << " index " << i;
    }
  }
}

TEST(WorkerPool, ReportsLowestIndexedError) {
  // Two failing indices; the higher one sits in the range a different
  // worker owns, so with naive first-error reporting the winner would
  // depend on thread timing. The pool must always report index 3.
  for (int threads : {1, 2, 4, 8}) {
    WorkerPool pool(threads);
    for (int rep = 0; rep < 25; ++rep) {
      Status st = pool.Run(64, [&](int i) -> Status {
        if (i == 3 || i == 60) {
          return Status::RuntimeError("task " + std::to_string(i));
        }
        return Status::OK();
      });
      ASSERT_FALSE(st.ok());
      EXPECT_EQ(st.message(), "task 3") << "threads " << threads;
    }
  }
}

TEST(WorkerPool, EmptyAndUndersizedWaves) {
  WorkerPool pool(8);
  EXPECT_TRUE(pool.Run(0, [](int) { return Status::OK(); }).ok());
  // Fewer indices than workers: most ranges start empty and workers can
  // only find work by stealing.
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  Status st = pool.Run(3, [&](int i) -> Status {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

// ---------------------------------------------------------------------
// Engine-level property: hash aggregation is byte-identical to the
// ordered-map path across workloads and engine configurations.

// Word count: (word, 1) pairs reduced by key. String keys stress
// hashing/compare asymmetry.
StatusOr<ValueVec> WordCount(Engine& engine, const ValueVec& words) {
  Dataset ds = engine.Parallelize(words);
  DIABLO_ASSIGN_OR_RETURN(
      Dataset pairs, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
        return Value::MakePair(v, I(1));
      }));
  DIABLO_ASSIGN_OR_RETURN(Dataset counts,
                          engine.ReduceByKey(pairs, BinOp::kAdd));
  return engine.Collect(counts);
}

// PageRank-flavoured: two iterations of join(ranks, links) →
// contributions → reduceByKey over doubles. Float folds make any
// arrival-order divergence between the paths visible bit-for-bit.
StatusOr<ValueVec> PageRankIters(Engine& engine, const ValueVec& edges) {
  Dataset links = engine.Parallelize(edges);
  DIABLO_ASSIGN_OR_RETURN(Dataset grouped, engine.GroupByKey(links));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset ranks,
      engine.MapValues(grouped,
                       [](const Value&) -> StatusOr<Value> { return D(1.0); }));
  for (int iter = 0; iter < 2; ++iter) {
    DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(grouped, ranks));
    DIABLO_ASSIGN_OR_RETURN(
        Dataset contribs,
        engine.FlatMap(joined, [](const Value& v) -> StatusOr<ValueVec> {
          const ValueVec& outs = v.tuple()[1].tuple()[0].bag();
          const double rank = v.tuple()[1].tuple()[1].AsDouble();
          ValueVec out;
          out.reserve(outs.size());
          for (const Value& dst : outs) {
            out.push_back(Value::MakePair(
                dst, D(rank / static_cast<double>(outs.size()))));
          }
          return out;
        }));
    DIABLO_ASSIGN_OR_RETURN(Dataset summed,
                            engine.ReduceByKey(contribs, BinOp::kAdd));
    DIABLO_ASSIGN_OR_RETURN(
        ranks, engine.MapValues(summed, [](const Value& v) -> StatusOr<Value> {
          return D(0.15 + 0.85 * v.AsDouble());
        }));
  }
  return engine.Collect(ranks);
}

// Join + coGroup + distinct over the same keyed rows, concatenated.
StatusOr<ValueVec> RelationalMix(Engine& engine, const ValueVec& rows) {
  Dataset ds = engine.Parallelize(rows);
  DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(ds, BinOp::kAdd));
  DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(ds, sums));
  DIABLO_ASSIGN_OR_RETURN(ValueVec out, engine.Collect(joined));
  DIABLO_ASSIGN_OR_RETURN(Dataset cg, engine.CoGroup(ds, sums));
  DIABLO_ASSIGN_OR_RETURN(ValueVec cg_rows, engine.Collect(cg));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset keys, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
        return v.tuple()[0];
      }));
  DIABLO_ASSIGN_OR_RETURN(Dataset uniq, engine.Distinct(keys));
  DIABLO_ASSIGN_OR_RETURN(ValueVec uniq_rows, engine.Collect(uniq));
  out.insert(out.end(), cg_rows.begin(), cg_rows.end());
  out.insert(out.end(), uniq_rows.begin(), uniq_rows.end());
  return out;
}

StatusOr<ValueVec> RunWorkload(Engine& engine, int which,
                               const ValueVec& rows) {
  switch (which) {
    case 0:
      return WordCount(engine, rows);
    case 1:
      return PageRankIters(engine, rows);
    default:
      return RelationalMix(engine, rows);
  }
}

ValueVec WorkloadInput(int which, std::mt19937_64& rng) {
  ValueVec rows;
  if (which == 0) {
    const int n = 200 + static_cast<int>(rng() % 300);
    for (int i = 0; i < n; ++i) {
      rows.push_back(S("word" + std::to_string(rng() % 37)));
    }
  } else if (which == 1) {
    const int nodes = 20 + static_cast<int>(rng() % 20);
    const int edges = 150 + static_cast<int>(rng() % 150);
    for (int i = 0; i < edges; ++i) {
      rows.push_back(Value::MakePair(I(static_cast<int64_t>(rng() % nodes)),
                                     I(static_cast<int64_t>(rng() % nodes))));
    }
  } else {
    const int n = 150 + static_cast<int>(rng() % 250);
    for (int i = 0; i < n; ++i) {
      rows.push_back(Value::MakePair(
          I(static_cast<int64_t>(rng() % 23)),
          D(static_cast<double>(rng() % 1000) / 7.0 - 50.0)));
    }
  }
  return rows;
}

TEST(HashAggProperty, HashMatchesOrderedByteForByte) {
  for (int which = 0; which < 3; ++which) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      std::mt19937_64 rng(seed * 6151 + which + 1);
      ValueVec rows = WorkloadInput(which, rng);
      const int parts = 1 + static_cast<int>(rng() % 12);
      for (int host_threads : {1, 4}) {
        for (bool fuse : {true, false}) {
          EngineConfig hash_config;
          hash_config.num_partitions = parts;
          hash_config.host_threads = host_threads;
          hash_config.fuse_narrow = fuse;
          hash_config.hash_aggregation = true;
          EngineConfig ordered_config = hash_config;
          ordered_config.hash_aggregation = false;
          ordered_config.persistent_pool = false;

          Engine hash(hash_config), ordered(ordered_config);
          auto hash_out = RunWorkload(hash, which, rows);
          auto ordered_out = RunWorkload(ordered, which, rows);
          ASSERT_TRUE(hash_out.ok()) << hash_out.status().ToString();
          ASSERT_TRUE(ordered_out.ok()) << ordered_out.status().ToString();
          EXPECT_EQ(*hash_out, *ordered_out)
              << "workload " << which << " seed " << seed << " threads "
              << host_threads << " fuse " << fuse;
        }
      }
    }
  }
}

TEST(HashAggProperty, HashUnderFaultsMatchesOrderedFaultFree) {
  // Fault schedules key off (stage id, partition, attempt, row index) —
  // coordinates the aggregation strategy does not change — so the same
  // injected faults hit both paths and neither may diverge from the
  // fault-free answer.
  for (int which = 0; which < 3; ++which) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      std::mt19937_64 rng(seed * 2741 + which + 11);
      ValueVec rows = WorkloadInput(which, rng);

      EngineConfig clean_config;
      clean_config.hash_aggregation = false;
      clean_config.persistent_pool = false;
      Engine clean(clean_config);
      auto expected = RunWorkload(clean, which, rows);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      for (bool hash_agg : {true, false}) {
        EngineConfig faulty_config;
        faulty_config.hash_aggregation = hash_agg;
        faulty_config.host_threads = 4;
        faulty_config.faults.seed = seed + 17;
        faulty_config.faults.task_failure_rate = 0.08;
        faulty_config.faults.corrupt_shuffle_rate = 0.01;
        faulty_config.faults.max_task_attempts = 12;
        faulty_config.serialize_shuffles = true;
        Engine faulty(faulty_config);
        auto got = RunWorkload(faulty, which, rows);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(*got, *expected)
            << "workload " << which << " seed " << seed << " hash_agg "
            << hash_agg;
      }
    }
  }
}

TEST(HashAggProperty, LostPartitionRecoveryUsesAccumulatorReplay) {
  // Deterministic lost-partition directives drive the recompute_many
  // closures (the accumulator-based replay paths) for every wide
  // operator in the mix; the rebuilt partitions must be byte-identical.
  std::mt19937_64 rng(4242);
  ValueVec rows = WorkloadInput(/*which=*/2, rng);
  EngineConfig clean_config;
  Engine clean(clean_config);
  auto expected = RunWorkload(clean, 2, rows);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  int64_t fired = 0;
  for (int stage = 0; stage < 8; ++stage) {
    EngineConfig config;
    config.faults.lose_partitions.push_back({stage, 2, 0});
    Engine engine(config);
    auto got = RunWorkload(engine, 2, rows);
    ASSERT_TRUE(got.ok()) << "stage " << stage << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "stage " << stage;
    fired += engine.metrics().total_recomputed_partitions();
  }
  // Not every stage id consumes a shuffle input, but several must have
  // replayed a lost partition through the accumulator-based closures.
  EXPECT_GE(fired, 3);
}

TEST(HashAggProperty, DistinctRecoveryUnderFaults) {
  // Distinct's dedup and its lost-partition replay both run on the
  // accumulator now; randomized faults plus a directed partition loss
  // must reproduce the clean answer.
  ValueVec rows;
  std::mt19937_64 rng(91);
  for (int i = 0; i < 400; ++i) {
    rows.push_back(Value::MakePair(I(static_cast<int64_t>(rng() % 29)),
                                   S("v" + std::to_string(rng() % 5))));
  }
  auto run = [&](EngineConfig config) {
    Engine engine(config);
    Dataset ds = engine.Parallelize(rows);
    auto uniq = engine.Distinct(ds);
    EXPECT_TRUE(uniq.ok()) << uniq.status().ToString();
    auto out = engine.Collect(*uniq);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? *out : ValueVec{};
  };
  const ValueVec expected = run(EngineConfig{});
  ASSERT_FALSE(expected.empty());

  EngineConfig faulty;
  faulty.faults.seed = 5;
  faulty.faults.task_failure_rate = 0.1;
  faulty.faults.max_task_attempts = 10;
  faulty.faults.lose_partitions.push_back({1, 3, 0});
  EXPECT_EQ(run(faulty), expected);

  EngineConfig ordered = faulty;
  ordered.hash_aggregation = false;
  EXPECT_EQ(run(ordered), expected);
}

// ---------------------------------------------------------------------
// Deterministic error selection (the RunPerPartition contract).

TEST(DeterministicErrors, SameErrorForEveryThreadCountAndScheduler) {
  // Several partitions fail; the reported error must be the one from the
  // lowest-indexed failing partition regardless of host_threads or
  // whether the persistent pool or the spawn-per-wave path ran the wave.
  ValueVec rows;
  for (int i = 0; i < 160; ++i) rows.push_back(I(i));

  auto run = [&](int host_threads, bool pool) {
    EngineConfig config;
    config.num_partitions = 16;
    config.host_threads = host_threads;
    config.persistent_pool = pool;
    config.fuse_narrow = false;  // eager: the map wave itself fails
    Engine engine(config);
    Dataset ds = engine.Parallelize(rows);
    auto mapped = engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
      // Rows 155 (partition 15) and 72 (partition 7) fail; partition 7
      // is the lowest failing partition, and 72 is its first bad row.
      if (v.AsInt() == 72 || v.AsInt() == 155) {
        return Status::RuntimeError("bad row " + std::to_string(v.AsInt()));
      }
      return v;
    });
    return mapped.ok() ? Status::OK() : mapped.status();
  };

  const Status expected = run(1, false);
  ASSERT_FALSE(expected.ok());
  EXPECT_EQ(expected.message(), "bad row 72");
  for (int threads : {1, 2, 4, 8}) {
    for (bool pool : {true, false}) {
      for (int rep = 0; rep < 10; ++rep) {
        const Status got = run(threads, pool);
        ASSERT_FALSE(got.ok());
        EXPECT_EQ(got.ToString(), expected.ToString())
            << "threads " << threads << " pool " << pool;
      }
    }
  }
}

TEST(PersistentPool, ReusedAcrossStagesAndMatchesSpawn) {
  // One engine drives a multi-stage program twice; the pool is created
  // once and must keep producing results identical to the spawn path.
  std::mt19937_64 rng(2026);
  ValueVec rows = WorkloadInput(/*which=*/1, rng);
  EngineConfig pool_config;
  pool_config.host_threads = 4;
  pool_config.persistent_pool = true;
  EngineConfig spawn_config = pool_config;
  spawn_config.persistent_pool = false;

  Engine pooled(pool_config), spawning(spawn_config);
  for (int round = 0; round < 3; ++round) {
    pooled.ResetRunState();
    spawning.ResetRunState();
    auto a = RunWorkload(pooled, 1, rows);
    auto b = RunWorkload(spawning, 1, rows);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(*a, *b) << "round " << round;
  }
}

}  // namespace
}  // namespace diablo::runtime
