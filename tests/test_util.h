#ifndef DIABLO_TESTS_TEST_UTIL_H_
#define DIABLO_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "diablo/diablo.h"
#include "runtime/operators.h"
#include "runtime/value.h"

namespace diablo::testing {

using runtime::Value;
using runtime::ValueVec;

inline Value IV(int64_t v) { return Value::MakeInt(v); }
inline Value DV(double v) { return Value::MakeDouble(v); }
inline Value SV(std::string v) { return Value::MakeString(std::move(v)); }
inline Value BV(bool v) { return Value::MakeBool(v); }
inline Value Pair(Value a, Value b) {
  return Value::MakePair(std::move(a), std::move(b));
}
inline Value Tup(ValueVec elems) { return Value::MakeTuple(std::move(elems)); }
inline Value Bag(ValueVec elems) { return Value::MakeBag(std::move(elems)); }

/// Sparse vector {(0,v0), (1,v1), ...} from dense doubles.
inline Value DoubleVector(const std::vector<double>& values) {
  ValueVec rows;
  for (size_t i = 0; i < values.size(); ++i) {
    rows.push_back(Pair(IV(static_cast<int64_t>(i)), DV(values[i])));
  }
  return Bag(std::move(rows));
}

/// Sparse vector of int values.
inline Value IntVector(const std::vector<int64_t>& values) {
  ValueVec rows;
  for (size_t i = 0; i < values.size(); ++i) {
    rows.push_back(Pair(IV(static_cast<int64_t>(i)), IV(values[i])));
  }
  return Bag(std::move(rows));
}

/// Sparse matrix {((i,j),v)} from dense rows.
inline Value DoubleMatrix(const std::vector<std::vector<double>>& rows) {
  ValueVec out;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows[i].size(); ++j) {
      out.push_back(Pair(Tup({IV(static_cast<int64_t>(i)),
                              IV(static_cast<int64_t>(j))}),
                         DV(rows[i][j])));
    }
  }
  return Bag(std::move(out));
}

/// Runs `source` through the full DIABLO pipeline (distributed engine),
/// through the single-process local algebra backend, and through the
/// sequential reference interpreter, then asserts that the named outputs
/// agree across all three semantics (bags as multisets, doubles within
/// tolerance).
class PipelineChecker {
 public:
  PipelineChecker(std::string source, Bindings inputs)
      : source_(std::move(source)), inputs_(std::move(inputs)) {}

  PipelineChecker& WithOptions(const CompileOptions& options) {
    options_ = options;
    return *this;
  }

  /// Checks one scalar output.
  void ExpectScalarAgrees(const std::string& name, double tol = 1e-9) {
    Setup();
    if (HasFatalFailure()) return;
    auto ref = reference_->GetScalar(name);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    auto got = run_->Scalar(name);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(runtime::AlmostEquals(*got, *ref, tol))
        << "DIABLO: " << got->ToString() << "\nreference: " << ref->ToString();
    auto local = local_->GetScalar(name);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    EXPECT_TRUE(runtime::AlmostEquals(*local, *ref, tol))
        << "local algebra: " << local->ToString()
        << "\nreference: " << ref->ToString();
  }

  /// Checks one array output.
  void ExpectArrayAgrees(const std::string& name, double tol = 1e-9) {
    Setup();
    if (HasFatalFailure()) return;
    auto ref = reference_->GetArray(name);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    auto got = run_->Array(name);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(runtime::BagAlmostEquals(*got, *ref, tol))
        << "DIABLO: " << got->ToString() << "\nreference: " << ref->ToString();
    auto local = local_->GetArray(name);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    EXPECT_TRUE(runtime::BagAlmostEquals(*local, *ref, tol))
        << "local algebra: " << local->ToString()
        << "\nreference: " << ref->ToString();
  }

 private:
  static bool HasFatalFailure() {
    return ::testing::Test::HasFatalFailure();
  }

  void Setup() {
    if (run_ != nullptr || reference_ != nullptr) return;
    auto compiled = Compile(source_, options_);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    engine_ = std::make_unique<runtime::Engine>();
    auto run = Run(*compiled, engine_.get(), inputs_);
    ASSERT_TRUE(run.ok()) << run.status().ToString()
                          << "\ntarget:\n" << compiled->TargetToString();
    run_ = std::make_unique<ProgramRun>(std::move(*run));
    auto local = RunLocal(*compiled, inputs_);
    ASSERT_TRUE(local.ok()) << local.status().ToString()
                            << "\ntarget:\n" << compiled->TargetToString();
    local_ = std::move(*local);
    auto ref = RunReference(source_, inputs_);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    reference_ = std::move(*ref);
  }

  std::string source_;
  Bindings inputs_;
  CompileOptions options_;
  std::unique_ptr<runtime::Engine> engine_;
  std::unique_ptr<ProgramRun> run_;
  std::unique_ptr<algebra::LocalExecutor> local_;
  std::unique_ptr<exec::ReferenceInterpreter> reference_;
};

}  // namespace diablo::testing

#endif  // DIABLO_TESTS_TEST_UTIL_H_
