// The Definition 3.1 accept/reject suite: every program the paper accepts
// or rejects appears here, plus the canonicalization of d := d ⊕ e.

#include "analysis/restrictions.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "workloads/programs.h"

namespace diablo::analysis {
namespace {

RestrictionReport Check(const std::string& src) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return CheckProgram(CanonicalizeIncrements(*p));
}

void ExpectAccepted(const std::string& src) {
  RestrictionReport report = Check(src);
  EXPECT_TRUE(report.ok) << report.ToString();
}

void ExpectRejected(const std::string& src,
                    const std::string& message_fragment = "") {
  RestrictionReport report = Check(src);
  EXPECT_FALSE(report.ok) << src;
  if (!message_fragment.empty() && !report.ok) {
    EXPECT_NE(report.ToString().find(message_fragment), std::string::npos)
        << report.ToString();
  }
}

// ------------------------- programs the paper accepts ----------------------

TEST(Restrictions, AcceptsGroupLikeIncrement) {
  // §3.2: "for i do C[V[i].K] += V[i].D ... satisfies our restrictions
  // since it increments but does not read C".
  ExpectAccepted("for i = 0, 9 do C[V[i].K] += V[i].D;");
}

TEST(Restrictions, AcceptsIncrementThenReadSameLocation) {
  // §3.2's exception (b) example:
  // for i do { for j do V[i] += 1; W[i] := V[i] }.
  ExpectAccepted(R"(
    for i = 0, 9 do {
      for j = 0, 9 do
        V[i] += 1;
      W[i] := V[i];
    }
  )");
}

TEST(Restrictions, AcceptsWriteThenReadSameLocation) {
  // Exception (a): read after write at the same affine location.
  ExpectAccepted("for i = 0, 9 do { V[i] := W[i]; X[i] := V[i]; }");
}

TEST(Restrictions, AcceptsMatrixMultiplication) {
  ExpectAccepted(R"(
    for i = 0, 9 do
      for j = 0, 9 do {
        R[i,j] := 0.0;
        for k = 0, 9 do
          R[i,j] += M[i,k]*N[k,j];
      }
  )");
}

TEST(Restrictions, AcceptsFixedMatrixFactorization) {
  // §3.2: the pq/err version with matrices instead of scalars.
  ExpectAccepted(R"(
    for i = 0, 9 do
      for j = 0, 9 do {
        for k = 0, 1 do
          pq[i,j] += P0[i,k]*Q0[k,j];
        err[i,j] := R[i,j] - pq[i,j];
        for k = 0, 1 do {
          P[i,k] += a*(2.0*err[i,j]*Q0[k,j] - b*P0[i,k]);
          Q[k,j] += a*(2.0*err[i,j]*P0[i,k] - b*Q0[k,j]);
        }
      }
  )");
}

TEST(Restrictions, AcceptsAllBenchmarkPrograms) {
  for (const auto& spec : bench::BenchmarkPrograms()) {
    auto p = parser::ParseProgram(spec.source);
    ASSERT_TRUE(p.ok()) << spec.name << ": " << p.status().ToString();
    RestrictionReport report =
        CheckProgram(CanonicalizeIncrements(*p));
    EXPECT_TRUE(report.ok) << spec.name << ":\n" << report.ToString();
  }
}

// ------------------------- programs the paper rejects ----------------------

TEST(Restrictions, RejectsStencilRecurrence) {
  // §3.2: "for i do V[i] := (V[i-1] + V[i+1])/2 will be rejected because
  // V is both a reader and a writer".
  ExpectRejected("for i = 1, 8 do V[i] := (V[i-1] + V[i+1]) / 2.0;",
                 "recurrence");
}

TEST(Restrictions, AcceptsStencilAfterManualRewrite) {
  // The paper's rewrite via a copy: two separate loops are fine.
  ExpectAccepted(R"(
    for i = 0, 9 do V2[i] := V[i];
    for i = 1, 8 do V[i] := (V2[i-1] + V2[i+1]) / 2.0;
  )");
}

TEST(Restrictions, RejectsNonAffineScalarInLoop) {
  // §3.2: "for i do { n := V[i]; W[i] := f(n) } is also rejected because
  // n is not affine".
  ExpectRejected("for i = 0, 9 do { n := V[i]; W[i] := n * 2.0; }",
                 "not affine");
}

TEST(Restrictions, AcceptsVectorizedScalarRewrite) {
  // The paper's fix: give n an array dimension.
  ExpectAccepted(
      "for i = 0, 9 do { nv[i] := V[i]; W[i] := nv[i] * 2.0; }");
}

TEST(Restrictions, RejectsUnfixedMatrixFactorization) {
  // §3.2: the pq/error-as-scalars version is rejected.
  ExpectRejected(R"(
    for i = 0, 9 do
      for j = 0, 9 do {
        pq := 0.0;
        for k = 0, 1 do
          pq += P0[i,k]*Q0[k,j];
        error := R[i,j] - pq;
        for k = 0, 1 do {
          P[i,k] += a*(2.0*error*Q0[k,j] - b*P0[i,k]);
          Q[k,j] += a*(2.0*error*P0[i,k] - b*Q0[k,j]);
        }
      }
  )");
}

TEST(Restrictions, RejectsBubbleSortStyleSwap) {
  // §1: "bubble-sort which requires swapping vector elements" is
  // rejected (read and write of V at different locations).
  ExpectRejected(R"(
    for i = 0, 8 do {
      t := V[i];
      V[i] := V[i+1];
      V[i+1] := t;
    }
  )");
}

TEST(Restrictions, RejectsIncrementReadUnderWrongContext) {
  // §3.2: "If there were another statement M[i,j] := V[i] inside the
  // inner loop, this would violate Exception (b)".
  ExpectRejected(R"(
    for i = 0, 9 do {
      for j = 0, 9 do {
        V[i] += 1;
        M[i,j] := V[i];
      }
    }
  )");
}

TEST(Restrictions, RejectsReadBeforeWrite) {
  // Exception (a) requires the write to precede the read.
  ExpectRejected("for i = 0, 9 do { X[i] := V[i]; V[i] := W[i]; }");
}

// ------------------------- structural rules --------------------------------

TEST(Restrictions, RejectsDeclInsideParallelFor) {
  ExpectRejected("for i = 0, 9 do { var t: double = 0.0; V[i] := t; }",
                 "declaration");
}

TEST(Restrictions, AllowsDeclInsideSequentialFor) {
  ExpectAccepted(R"(
    for i = 1, 3 do {
      var j: int = 0;
      while (j < i) j += 1;
      total += j;
    }
  )");
}

TEST(Restrictions, RejectsDuplicateLoopIndexes) {
  ExpectRejected("for i = 0, 9 do for i = 0, 9 do V[i] += 1;",
                 "duplicate loop index");
}

TEST(Restrictions, RejectsForInContainingWhile) {
  ExpectRejected(R"(
    for v in V do {
      while (v > 0.0) x += 1;
    }
  )",
                 "while");
}

// ------------------------- canonicalization --------------------------------

TEST(Canonicalize, RewritesSelfUpdateToIncrement) {
  auto p = parser::ParseProgram("eq := eq && v == x;");
  ASSERT_TRUE(p.ok());
  ast::Program canon = CanonicalizeIncrements(*p);
  ASSERT_TRUE(canon.stmts[0]->is<ast::Stmt::Incr>());
  EXPECT_EQ(canon.stmts[0]->as<ast::Stmt::Incr>().op, runtime::BinOp::kAnd);
}

TEST(Canonicalize, HandlesRightOperandForm) {
  auto p = parser::ParseProgram("s := v + s;");
  ASSERT_TRUE(p.ok());
  ast::Program canon = CanonicalizeIncrements(*p);
  ASSERT_TRUE(canon.stmts[0]->is<ast::Stmt::Incr>());
}

TEST(Canonicalize, LeavesNonCommutativeAlone) {
  auto p = parser::ParseProgram("s := s - v;");
  ASSERT_TRUE(p.ok());
  ast::Program canon = CanonicalizeIncrements(*p);
  EXPECT_TRUE(canon.stmts[0]->is<ast::Stmt::Assign>());
}

TEST(Canonicalize, LeavesDifferentDestinationsAlone) {
  auto p = parser::ParseProgram("for i = 0, 5 do V[i] := V[i+1] + 1.0;");
  ASSERT_TRUE(p.ok());
  ast::Program canon = CanonicalizeIncrements(*p);
  EXPECT_TRUE(canon.stmts[0]->as<ast::Stmt::ForRange>()
                  .body->is<ast::Stmt::Assign>());
}

TEST(Canonicalize, RewritesInsideLoops) {
  auto p = parser::ParseProgram("for v in V do c := c || v == 1.0;");
  ASSERT_TRUE(p.ok());
  ast::Program canon = CanonicalizeIncrements(*p);
  EXPECT_TRUE(canon.stmts[0]->as<ast::Stmt::ForEach>()
                  .body->is<ast::Stmt::Incr>());
}

// ------------------------- report determinism ------------------------------

TEST(Restrictions, ViolationsSortedBySourceLocation) {
  // Two offending loops: the report must list them in source order no
  // matter which order the analyzer visited the statements in.
  const std::string src = R"(
    for i = 0, 3 do
      V[i] := V[i+1];
    for j = 0, 3 do
      W[j] := W[j+1];
  )";
  RestrictionReport report = Check(src);
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_LT(report.violations[0].loc.line, report.violations[1].loc.line);
  EXPECT_NE(report.violations[0].message.find("V"), std::string::npos);
  EXPECT_NE(report.violations[1].message.find("W"), std::string::npos);
}

TEST(Restrictions, DuplicateViolationsAreDeduplicated) {
  // The same destination/read pair reached twice (two reads of the same
  // shifted element) must not produce byte-identical duplicate entries.
  const std::string src = R"(
    for i = 1, 8 do
      V[i] := V[i-1] + V[i-1];
  )";
  RestrictionReport report = Check(src);
  EXPECT_FALSE(report.ok);
  for (size_t a = 0; a < report.violations.size(); ++a) {
    for (size_t b = a + 1; b < report.violations.size(); ++b) {
      EXPECT_FALSE(report.violations[a].message ==
                       report.violations[b].message &&
                   report.violations[a].loc.line ==
                       report.violations[b].loc.line &&
                   report.violations[a].loc.column ==
                       report.violations[b].loc.column)
          << "duplicate violation: " << report.violations[a].message;
    }
  }
}

TEST(Restrictions, ReportIsIdenticalAcrossRuns) {
  const std::string src = R"(
    var t: double = 0.0;
    for i = 0, 6 do {
      t := V[i];
      V[i] := V[i+1];
      V[i+1] := t;
    }
  )";
  RestrictionReport first = Check(src);
  RestrictionReport second = Check(src);
  EXPECT_EQ(first.ToString(), second.ToString());
  ASSERT_EQ(first.violations.size(), second.violations.size());
  for (size_t k = 0; k < first.violations.size(); ++k) {
    EXPECT_EQ(first.violations[k].message, second.violations[k].message);
    EXPECT_EQ(first.violations[k].loc.line, second.violations[k].loc.line);
  }
}

}  // namespace
}  // namespace diablo::analysis
