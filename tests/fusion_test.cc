// Narrow-stage fusion property tests: randomized chains of narrow
// operators terminated by a random action must produce byte-identical
// results whether the chain is fused into the next stage boundary
// (fuse_narrow = true, the default) or materialized one ValueVec per
// operator (the eager engine) — and, with fault injection on top, a
// fused run that completes must still equal the fault-free fused run
// exactly. Also checks the fused-stage observability metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/fault.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }

ValueVec RandomPairs(std::mt19937_64& rng, int n, int keys) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(
        I(static_cast<int64_t>(rng() % keys)),
        D(static_cast<double>(rng() % 1000) / 7.0 - 50.0)));
  }
  return rows;
}

/// A program drawn from (op codes, terminal code): a chain of narrow
/// operators over (int, double) pairs followed by one action. Both
/// engines are handed the exact same closures, so any divergence comes
/// from execution strategy, never from the program.
StatusOr<ValueVec> RunProgram(Engine& engine, const ValueVec& rows,
                              const std::vector<int>& ops, int terminal) {
  Dataset cur = engine.Parallelize(rows);
  for (int op : ops) {
    switch (op % 4) {
      case 0: {
        DIABLO_ASSIGN_OR_RETURN(
            cur, engine.Map(cur, [](const Value& v) -> StatusOr<Value> {
              return Value::MakePair(
                  v.tuple()[0],
                  D(v.tuple()[1].AsDouble() * 1.25 +
                    static_cast<double>(v.tuple()[0].AsInt())));
            }));
        break;
      }
      case 1: {
        DIABLO_ASSIGN_OR_RETURN(
            cur, engine.MapValues(cur, [](const Value& v) -> StatusOr<Value> {
              return D(v.AsDouble() * 0.5 - 3.0);
            }));
        break;
      }
      case 2: {
        DIABLO_ASSIGN_OR_RETURN(
            cur, engine.Filter(cur, [](const Value& v) -> StatusOr<bool> {
              return v.tuple()[1].AsDouble() > -40.0;
            }));
        break;
      }
      default: {
        DIABLO_ASSIGN_OR_RETURN(
            cur, engine.FlatMap(cur, [](const Value& v) -> StatusOr<ValueVec> {
              ValueVec out{v};
              if (v.tuple()[0].AsInt() % 2 == 0) {
                out.push_back(Value::MakePair(
                    v.tuple()[0], D(v.tuple()[1].AsDouble() + 1.0)));
              }
              return out;
            }));
        break;
      }
    }
  }
  switch (terminal % 6) {
    case 0:
      return engine.Collect(cur);
    case 1: {
      DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                              engine.ReduceByKey(cur, BinOp::kAdd));
      return engine.Collect(sums);
    }
    case 2: {
      DIABLO_ASSIGN_OR_RETURN(Dataset grouped, engine.GroupByKey(cur));
      return engine.Collect(grouped);
    }
    case 3: {
      DIABLO_ASSIGN_OR_RETURN(Dataset ckpt, engine.Checkpoint(cur));
      return engine.Collect(ckpt);
    }
    case 4: {
      // Join the (still lazy) stream with its own per-key sums: both
      // shuffle scatters inline their pending chains.
      DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                              engine.ReduceByKey(cur, BinOp::kAdd));
      DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(cur, sums));
      return engine.Collect(joined);
    }
    default: {
      // Pairwise (elementwise) fold of every row; wrap into a vec.
      auto total = engine.Reduce(cur, [](const Value& a, const Value& b) {
        return EvalBinOp(BinOp::kAdd, a, b);
      });
      if (!total.ok()) return total.status();
      return total->has_value() ? ValueVec{**total} : ValueVec{};
    }
  }
}

TEST(FusionProperty, FusedMatchesEagerByteForByte) {
  for (uint64_t seed = 0; seed < 24; ++seed) {
    std::mt19937_64 rng(seed * 7919 + 1);
    ValueVec rows = RandomPairs(rng, 50 + static_cast<int>(rng() % 350),
                                1 + static_cast<int>(rng() % 19));
    std::vector<int> ops(rng() % 6);
    for (int& op : ops) op = static_cast<int>(rng() % 4);
    int terminal = static_cast<int>(rng() % 6);

    EngineConfig fused_config;
    fused_config.fuse_narrow = true;
    fused_config.num_partitions = 1 + static_cast<int>(rng() % 12);
    EngineConfig eager_config = fused_config;
    eager_config.fuse_narrow = false;

    Engine fused(fused_config), eager(eager_config);
    auto fused_out = RunProgram(fused, rows, ops, terminal);
    auto eager_out = RunProgram(eager, rows, ops, terminal);
    ASSERT_TRUE(fused_out.ok()) << fused_out.status().ToString();
    ASSERT_TRUE(eager_out.ok()) << eager_out.status().ToString();
    EXPECT_EQ(*fused_out, *eager_out)
        << "seed " << seed << ", " << ops.size() << " ops, terminal "
        << terminal;
  }
}

TEST(FusionProperty, FusedUnderFaultsMatchesFaultFree) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    std::mt19937_64 rng(seed * 104729 + 3);
    ValueVec rows = RandomPairs(rng, 100 + static_cast<int>(rng() % 200),
                                1 + static_cast<int>(rng() % 13));
    std::vector<int> ops(1 + rng() % 5);
    for (int& op : ops) op = static_cast<int>(rng() % 4);
    int terminal = static_cast<int>(rng() % 6);

    EngineConfig clean_config;
    Engine clean(clean_config);
    auto expected = RunProgram(clean, rows, ops, terminal);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    EngineConfig faulty_config;
    faulty_config.faults.seed = seed + 1;
    faulty_config.faults.task_failure_rate = 0.1;
    faulty_config.faults.straggler_rate = 0.05;
    faulty_config.faults.max_task_attempts = 10;
    Engine faulty(faulty_config);
    auto got = RunProgram(faulty, rows, ops, terminal);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Bit-identical: a restarted attempt reruns the whole fused chain
    // for its partition, so recovery can never change results.
    EXPECT_EQ(*got, *expected) << "seed " << seed;
  }
}

TEST(FusionProperty, LostPartitionsReplayTheChain) {
  // Deterministic lost-partition directives against a fused pipeline:
  // the rebuilt partitions flow through the same single-pass scatter.
  std::mt19937_64 rng(99);
  ValueVec rows = RandomPairs(rng, 400, 17);
  std::vector<int> ops = {3, 2, 0};  // flatMap, filter, map
  auto run = [&](EngineConfig config) {
    Engine engine(config);
    auto out = RunProgram(engine, rows, ops, /*terminal=*/1);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::make_pair(out.ok() ? *out : ValueVec{},
                          engine.metrics().total_recomputed_partitions());
  };
  auto [expected, clean_recomputed] = run(EngineConfig{});
  EXPECT_EQ(clean_recomputed, 0);
  EngineConfig config;
  // Stage 0 is the reduceByKey combine wave over the fused chain: its
  // source partitions are durable (parallelized input), so losing one
  // forces a durable re-read followed by a full chain replay.
  config.faults.lose_partitions.push_back({0, 1, 0});
  auto [got, recomputed] = run(config);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(recomputed, 1);
}

TEST(FusionMetrics, FusedStagesReportSavedMaterialization) {
  Engine engine;  // fuse_narrow defaults to true
  ValueVec rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back(Value::MakePair(I(i % 10), D(i * 0.25)));
  }
  Dataset ds = engine.Parallelize(rows);
  auto expanded = engine.FlatMap(
      ds, [](const Value& v) -> StatusOr<ValueVec> { return ValueVec{v, v}; });
  ASSERT_TRUE(expanded.ok());
  auto kept =
      engine.Filter(*expanded, [](const Value& v) -> StatusOr<bool> {
        return v.tuple()[1].AsDouble() < 200.0;
      });
  ASSERT_TRUE(kept.ok());
  auto scaled = engine.MapValues(
      *kept, [](const Value& v) -> StatusOr<Value> {
        return D(v.AsDouble() * 2.0);
      });
  ASSERT_TRUE(scaled.ok());
  // Nothing ran yet: narrow operators defer under fusion.
  EXPECT_EQ(engine.metrics().stages().size(), 0u);
  EXPECT_FALSE(scaled->materialized());
  EXPECT_EQ(scaled->chain().size(), 3u);

  auto sums = engine.ReduceByKey(*scaled, BinOp::kAdd);
  ASSERT_TRUE(sums.ok());
  // The combine wave inlined all three operators and accounted for the
  // intermediate rows it never built.
  EXPECT_EQ(engine.metrics().total_fused_ops(), 3);
  EXPECT_GT(engine.metrics().total_rows_not_materialized(), 0);
  EXPECT_GT(engine.metrics().total_bytes_not_materialized(), 0);
  const StageStats& stage = engine.metrics().stages().front();
  EXPECT_NE(stage.label.find("flatMap+filter+mapValues"), std::string::npos)
      << stage.label;
}

}  // namespace
}  // namespace diablo::runtime
