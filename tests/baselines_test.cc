// Tests for the Table-1 baseline translators (MOLD-like template search,
// Casper-like synthesize-and-verify): success on the flat loops, failure
// on the complex programs, and the effort gap against DIABLO.

#include <gtest/gtest.h>

#include <chrono>

#include "baselines/casper_like.h"
#include "baselines/mold_like.h"
#include "diablo/diablo.h"
#include "workloads/programs.h"

namespace diablo::baselines {
namespace {

const std::string& Source(const std::string& name) {
  for (const auto& entry : bench::Table1Programs()) {
    if (entry.name == name) return entry.source;
  }
  static const std::string kEmpty;
  ADD_FAILURE() << "unknown program " << name;
  return kEmpty;
}

TEST(MoldLike, TranslatesSimpleFold) {
  BaselineResult r = MoldLikeTranslate(Source("sum"));
  EXPECT_TRUE(r.success) << r.failure_reason;
  EXPECT_NE(r.output.find(".reduce(_+_)"), std::string::npos) << r.output;
}

TEST(MoldLike, TranslatesFilteredFold) {
  BaselineResult r = MoldLikeTranslate(Source("conditional_sum"));
  EXPECT_TRUE(r.success) << r.failure_reason;
  EXPECT_NE(r.output.find(".filter("), std::string::npos) << r.output;
}

TEST(MoldLike, TranslatesGroupBy) {
  BaselineResult r = MoldLikeTranslate(Source("word_count"));
  EXPECT_TRUE(r.success) << r.failure_reason;
  EXPECT_NE(r.output.find(".reduceByKey(_+_)"), std::string::npos)
      << r.output;
}

TEST(MoldLike, TranslatesHistogramViaLoopSplitting) {
  BaselineResult r = MoldLikeTranslate(Source("histogram"));
  EXPECT_TRUE(r.success) << r.failure_reason;
  // Three reduceByKey pipelines, one per channel.
  size_t count = 0, pos = 0;
  while ((pos = r.output.find("reduceByKey", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
}

TEST(MoldLike, FailsOnComplexPrograms) {
  for (const char* name :
       {"pagerank", "matrix_factorization", "kmeans",
        "matrix_multiplication"}) {
    BaselineResult r = MoldLikeTranslate(Source(name));
    EXPECT_FALSE(r.success) << name << " unexpectedly translated:\n"
                            << r.output;
  }
}

TEST(CasperLike, SynthesizesSum) {
  BaselineResult r = CasperLikeTranslate(Source("sum"));
  EXPECT_TRUE(r.success) << r.failure_reason;
  EXPECT_NE(r.output.find(".reduce(_+_)"), std::string::npos) << r.output;
  EXPECT_GT(r.states_explored, 0);
}

TEST(CasperLike, SynthesizesCount) {
  BaselineResult r = CasperLikeTranslate(Source("count"));
  EXPECT_TRUE(r.success) << r.failure_reason;
}

TEST(CasperLike, SynthesizesConditionalSum) {
  BaselineResult r = CasperLikeTranslate(Source("conditional_sum"));
  EXPECT_TRUE(r.success) << r.failure_reason;
}

TEST(CasperLike, SynthesizesWordCount) {
  BaselineResult r = CasperLikeTranslate(Source("word_count"));
  EXPECT_TRUE(r.success) << r.failure_reason;
  EXPECT_NE(r.output.find("reduceByKey"), std::string::npos) << r.output;
}

TEST(CasperLike, FailsOutsideSynthesizableFragment) {
  for (const char* name :
       {"matrix_multiplication", "pagerank", "kmeans",
        "linear_regression", "matrix_factorization", "pca"}) {
    BaselineResult r = CasperLikeTranslate(Source(name));
    EXPECT_FALSE(r.success) << name;
  }
}

TEST(CasperLike, SynthesisCostExceedsDiabloByOrdersOfMagnitude) {
  // The Table-1 headline: compositional translation is a linear pass;
  // synthesis explores a candidate space. Compare explored candidates
  // against the size of the program (a proxy independent of wall-clock
  // noise), and wall-clock as a sanity check.
  const std::string& src = Source("conditional_sum");
  // Warm both paths once (first-call static initialization), then time
  // averages of several runs so the comparison is stable under process
  // isolation and scheduler noise.
  ASSERT_TRUE(Compile(src).ok());
  BaselineResult casper = CasperLikeTranslate(src);
  ASSERT_TRUE(casper.success) << casper.failure_reason;
  EXPECT_GT(casper.states_explored, 100);

  constexpr int kRuns = 5;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(Compile(src).ok());
  }
  auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(CasperLikeTranslate(src).success);
  }
  auto t2 = std::chrono::steady_clock::now();
  double diablo_s = std::chrono::duration<double>(t1 - t0).count();
  double casper_s = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_GT(casper_s, diablo_s)
      << "casper " << casper_s << "s vs diablo " << diablo_s << "s";
}

TEST(Baselines, DiabloHandlesEveryTable1Program) {
  for (const auto& entry : bench::Table1Programs()) {
    auto compiled = Compile(entry.source);
    EXPECT_TRUE(compiled.ok())
        << entry.name << ": " << compiled.status().ToString();
  }
}

}  // namespace
}  // namespace diablo::baselines
