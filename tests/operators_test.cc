// Unit tests for runtime operator evaluation: coercions, commutative
// monoids and their identities, elementwise tuple lifting, argmin, bag
// reductions and multiset equality.

#include "runtime/operators.h"

#include <gtest/gtest.h>

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }
Value B(bool v) { return Value::MakeBool(v); }

TEST(Operators, IntArithmetic) {
  EXPECT_EQ(EvalBinOp(BinOp::kAdd, I(2), I(3))->AsInt(), 5);
  EXPECT_EQ(EvalBinOp(BinOp::kSub, I(2), I(3))->AsInt(), -1);
  EXPECT_EQ(EvalBinOp(BinOp::kMul, I(2), I(3))->AsInt(), 6);
  EXPECT_EQ(EvalBinOp(BinOp::kDiv, I(7), I(2))->AsInt(), 3);
  EXPECT_EQ(EvalBinOp(BinOp::kMod, I(7), I(2))->AsInt(), 1);
}

TEST(Operators, MixedArithmeticWidens) {
  Value r = *EvalBinOp(BinOp::kAdd, I(2), D(0.5));
  ASSERT_TRUE(r.is_double());
  EXPECT_DOUBLE_EQ(r.AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(EvalBinOp(BinOp::kDiv, I(1), D(4))->AsDouble(), 0.25);
}

TEST(Operators, DivisionByZero) {
  EXPECT_FALSE(EvalBinOp(BinOp::kDiv, I(1), I(0)).ok());
  EXPECT_FALSE(EvalBinOp(BinOp::kMod, I(1), I(0)).ok());
  // Double division by zero follows IEEE.
  EXPECT_TRUE(EvalBinOp(BinOp::kDiv, D(1), D(0)).ok());
}

TEST(Operators, StringConcatAndCompare) {
  EXPECT_EQ(EvalBinOp(BinOp::kAdd, Value::MakeString("a"),
                      Value::MakeString("b"))
                ->AsString(),
            "ab");
  EXPECT_TRUE(EvalBinOp(BinOp::kLt, Value::MakeString("a"),
                        Value::MakeString("b"))
                  ->AsBool());
  EXPECT_TRUE(EvalBinOp(BinOp::kEq, Value::MakeString("x"),
                        Value::MakeString("x"))
                  ->AsBool());
}

TEST(Operators, NumericEqualityCrossesKinds) {
  EXPECT_TRUE(EvalBinOp(BinOp::kEq, I(1), D(1.0))->AsBool());
  EXPECT_FALSE(EvalBinOp(BinOp::kNe, I(1), D(1.0))->AsBool());
}

TEST(Operators, BooleanConnectives) {
  EXPECT_TRUE(EvalBinOp(BinOp::kAnd, B(true), B(true))->AsBool());
  EXPECT_FALSE(EvalBinOp(BinOp::kAnd, B(true), B(false))->AsBool());
  EXPECT_TRUE(EvalBinOp(BinOp::kOr, B(false), B(true))->AsBool());
  EXPECT_FALSE(EvalBinOp(BinOp::kAnd, I(1), B(true)).ok());
}

TEST(Operators, MinMax) {
  EXPECT_EQ(EvalBinOp(BinOp::kMin, I(2), I(5))->AsInt(), 2);
  EXPECT_EQ(EvalBinOp(BinOp::kMax, I(2), I(5))->AsInt(), 5);
  EXPECT_DOUBLE_EQ(EvalBinOp(BinOp::kMin, D(2.5), I(2))->AsDouble(), 2.0);
}

TEST(Operators, CommutativeMonoidClassification) {
  EXPECT_TRUE(IsCommutativeMonoid(BinOp::kAdd));
  EXPECT_TRUE(IsCommutativeMonoid(BinOp::kMul));
  EXPECT_TRUE(IsCommutativeMonoid(BinOp::kMin));
  EXPECT_TRUE(IsCommutativeMonoid(BinOp::kMax));
  EXPECT_TRUE(IsCommutativeMonoid(BinOp::kAnd));
  EXPECT_TRUE(IsCommutativeMonoid(BinOp::kOr));
  EXPECT_TRUE(IsCommutativeMonoid(BinOp::kArgmin));
  EXPECT_FALSE(IsCommutativeMonoid(BinOp::kSub));
  EXPECT_FALSE(IsCommutativeMonoid(BinOp::kDiv));
  EXPECT_FALSE(IsCommutativeMonoid(BinOp::kLt));
}

TEST(Operators, MonoidIdentities) {
  EXPECT_EQ(MonoidIdentity(BinOp::kAdd, I(0)).AsInt(), 0);
  EXPECT_EQ(MonoidIdentity(BinOp::kMul, I(0)).AsInt(), 1);
  EXPECT_DOUBLE_EQ(MonoidIdentity(BinOp::kAdd, D(0)).AsDouble(), 0.0);
  EXPECT_TRUE(MonoidIdentity(BinOp::kAnd, I(0)).AsBool());
  EXPECT_FALSE(MonoidIdentity(BinOp::kOr, I(0)).AsBool());
  // Identity absorbs: id ⊕ x == x.
  for (BinOp op : {BinOp::kAdd, BinOp::kMul, BinOp::kMin, BinOp::kMax}) {
    Value x = D(3.25);
    Value id = MonoidIdentity(op, x);
    EXPECT_EQ(*EvalBinOp(op, id, x), x) << BinOpName(op);
  }
}

TEST(Operators, TupleIdentityIsElementwise) {
  Value sample = Value::MakeTuple({D(1), D(2), I(3)});
  Value id = MonoidIdentity(BinOp::kAdd, sample);
  ASSERT_TRUE(id.is_tuple());
  Value combined = *EvalBinOp(BinOp::kAdd, id, sample);
  EXPECT_TRUE(AlmostEquals(combined, sample, 0));
}

TEST(Operators, ElementwiseTupleAdd) {
  Value a = Value::MakeTuple({D(1), D(2), I(1)});
  Value b = Value::MakeTuple({D(10), D(20), I(1)});
  Value sum = *EvalBinOp(BinOp::kAdd, a, b);
  EXPECT_DOUBLE_EQ(sum.tuple()[0].AsDouble(), 11);
  EXPECT_DOUBLE_EQ(sum.tuple()[1].AsDouble(), 22);
  EXPECT_EQ(sum.tuple()[2].AsInt(), 2);
  // Arity mismatch is an error.
  EXPECT_FALSE(
      EvalBinOp(BinOp::kAdd, a, Value::MakeTuple({D(1)})).ok());
}

TEST(Operators, ArgminKeepsSmallerScore) {
  Value a = Value::MakePair(D(1.5), I(3));
  Value b = Value::MakePair(D(0.5), I(7));
  EXPECT_EQ(EvalBinOp(BinOp::kArgmin, a, b)->tuple()[1].AsInt(), 7);
  EXPECT_EQ(EvalBinOp(BinOp::kArgmin, b, a)->tuple()[1].AsInt(), 7);
  // Left bias on ties.
  Value c = Value::MakePair(D(0.5), I(9));
  EXPECT_EQ(EvalBinOp(BinOp::kArgmin, b, c)->tuple()[1].AsInt(), 7);
  // The identity loses to anything.
  Value id = MonoidIdentity(BinOp::kArgmin, a);
  EXPECT_EQ(EvalBinOp(BinOp::kArgmin, id, a)->tuple()[1].AsInt(), 3);
}

TEST(Operators, UnaryOps) {
  EXPECT_EQ(EvalUnOp(UnOp::kNeg, I(4))->AsInt(), -4);
  EXPECT_DOUBLE_EQ(EvalUnOp(UnOp::kNeg, D(4))->AsDouble(), -4);
  EXPECT_FALSE(EvalUnOp(UnOp::kNot, B(true))->AsBool());
  EXPECT_FALSE(EvalUnOp(UnOp::kNot, I(1)).ok());
}

TEST(Operators, ReduceBag) {
  ValueVec elems = {I(1), I(2), I(3)};
  EXPECT_EQ(ReduceBag(BinOp::kAdd, elems)->AsInt(), 6);
  EXPECT_EQ(ReduceBag(BinOp::kMul, elems)->AsInt(), 6);
  EXPECT_EQ(ReduceBag(BinOp::kMax, elems)->AsInt(), 3);
  // Empty bag yields the identity.
  EXPECT_EQ(ReduceBag(BinOp::kAdd, {})->AsInt(), 0);
}

TEST(Operators, BagEqualsIsMultiset) {
  Value a = Value::MakeBag({I(1), I(2), I(2)});
  Value b = Value::MakeBag({I(2), I(1), I(2)});
  Value c = Value::MakeBag({I(1), I(1), I(2)});
  EXPECT_TRUE(BagEquals(a, b));
  EXPECT_FALSE(BagEquals(a, c));
  EXPECT_FALSE(BagEquals(a, Value::MakeBag({I(1), I(2)})));
}

TEST(Operators, AlmostEqualsTolerance) {
  EXPECT_TRUE(AlmostEquals(D(1.0), D(1.0 + 1e-12), 1e-9));
  EXPECT_FALSE(AlmostEquals(D(1.0), D(1.1), 1e-9));
  // Relative tolerance scales with magnitude.
  EXPECT_TRUE(AlmostEquals(D(1e12), D(1e12 + 1), 1e-9));
  Value a = Value::MakeBag({Value::MakePair(I(1), D(2.0))});
  Value b = Value::MakeBag({Value::MakePair(I(1), D(2.0 + 1e-12))});
  EXPECT_TRUE(BagAlmostEquals(a, b, 1e-9));
}

}  // namespace
}  // namespace diablo::runtime
