// Tests for the target-code executor: while-loop lifting, declare
// re-initialization inside loops (PageRank's Q), scalar assignment
// cardinality, and the §5 tiled-storage mode.

#include "exec/target_executor.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace diablo::exec {
namespace {

using testing::Bag;
using testing::DoubleMatrix;
using testing::DoubleVector;
using testing::DV;
using testing::IV;
using testing::Pair;
using testing::Tup;
using runtime::Value;

TEST(Executor, DeclareInsideWhileReinitializesEachIteration) {
  // PageRank's pattern: Q is declared inside the while body and must be
  // empty at the start of every iteration.
  runtime::Engine engine;
  auto run = CompileAndRun(R"(
    var k: int = 0;
    var total: vector[double] = vector();
    while (k < 3) {
      var Q: vector[double] = vector();
      k += 1;
      for i = 0, 2 do
        Q[i] := 1.0;
      for i = 0, 2 do
        total[i] += Q[i];
    }
  )",
                           &engine, {});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Value total = *run->Array("total");
  ASSERT_EQ(total.bag().size(), 3u);
  for (const Value& row : total.bag()) {
    EXPECT_DOUBLE_EQ(row.tuple()[1].AsDouble(), 3.0);
  }
}

TEST(Executor, WhileConditionFromMissingReadStops) {
  // The while condition lifts to a bag; a missing array read makes it
  // empty, which ends the loop.
  runtime::Engine engine;
  auto run = CompileAndRun(R"(
    var k: int = 0;
    while (V[99] > 0.0)
      k += 1;
  )",
                           &engine, {{"V", DoubleVector({1.0})}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->Scalar("k")->AsInt(), 0);
}

TEST(Executor, StatementsExecutedCountsLoopIterations) {
  runtime::Engine engine;
  auto compiled = Compile(R"(
    var k: int = 0;
    while (k < 4)
      k += 1;
  )");
  ASSERT_TRUE(compiled.ok());
  TargetExecutor executor(&engine);
  ASSERT_TRUE(executor.Run(compiled->target, {}).ok());
  // declare + while + 4 body executions.
  EXPECT_GE(executor.statements_executed(), 6);
}

TEST(Executor, UnknownOutputsReportInvalidArgument) {
  runtime::Engine engine;
  auto run = CompileAndRun("var x: int = 1;", &engine, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->Scalar("nope").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run->Array("nope").status().code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------- tiled storage -------------------------------

constexpr const char kMatrixAdd[] = R"(
  var R: matrix[double] = matrix();
  for i = 0, n - 1 do
    for j = 0, n - 1 do
      R[i,j] += M[i,j] + N[i,j];
)";

Bindings DenseInputs(int64_t n) {
  std::vector<std::vector<double>> m(n, std::vector<double>(n));
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      m[i][j] = static_cast<double>(i * n + j);
      w[i][j] = static_cast<double>(100 + i - j);
    }
  }
  return {{"M", DoubleMatrix(m)},
          {"N", DoubleMatrix(w)},
          {"n", IV(n)}};
}

TEST(TiledExecution, MatchesSparseExecutionOnDenseMatrices) {
  auto compiled = Compile(kMatrixAdd);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Bindings inputs = DenseInputs(8);

  runtime::Engine sparse_engine;
  auto sparse_run = ::diablo::Run(*compiled, &sparse_engine, inputs);
  ASSERT_TRUE(sparse_run.ok()) << sparse_run.status().ToString();

  runtime::Engine tiled_engine;
  RunOptions options;
  options.tiled_arrays = {"M", "N", "R"};
  options.tile_config = {4, 4};
  auto tiled_run = ::diablo::Run(*compiled, &tiled_engine, inputs, options);
  ASSERT_TRUE(tiled_run.ok()) << tiled_run.status().ToString();

  EXPECT_TRUE(runtime::BagAlmostEquals(*tiled_run->Array("R"),
                                       *sparse_run->Array("R"), 1e-9))
      << "tiled: " << tiled_run->Array("R")->ToString();
}

TEST(TiledExecution, IncrementalMergeAvoidsShufflingStoredTiles) {
  // Two successive merges into R: the second one hits a non-empty tiled
  // array and must take the zip path.
  auto compiled = Compile(R"(
    var R: matrix[double] = matrix();
    for i = 0, n - 1 do
      for j = 0, n - 1 do
        R[i,j] += M[i,j];
    for i = 0, n - 1 do
      for j = 0, n - 1 do
        R[i,j] += N[i,j];
  )");
  ASSERT_TRUE(compiled.ok());
  Bindings inputs = DenseInputs(16);

  runtime::Engine tiled_engine;
  RunOptions options;
  options.tiled_arrays = {"R"};
  options.tile_config = {4, 4};
  ASSERT_TRUE(::diablo::Run(*compiled, &tiled_engine, inputs, options).ok());
  // The tiled path replaces the element-wise mergeInc coGroup with
  // pack + zip merge; the zip merge itself ships no bytes.
  bool saw_zip = false;
  for (const auto& stage : tiled_engine.metrics().stages()) {
    if (stage.label == "zipMerge") {
      saw_zip = true;
      EXPECT_EQ(stage.shuffle_bytes, 0);
    }
    EXPECT_NE(stage.label, "mergeInc");
  }
  EXPECT_TRUE(saw_zip);
}

TEST(TiledExecution, NonAdditiveUpdatesFallBackToSparsePath) {
  // Plain (non-incremental) assignment to a tiled matrix repacks.
  auto compiled = Compile(R"(
    var R: matrix[double] = matrix();
    for i = 0, n - 1 do
      for j = 0, n - 1 do
        R[i,j] := M[i,j] * 2.0;
  )");
  ASSERT_TRUE(compiled.ok());
  Bindings inputs = DenseInputs(8);
  runtime::Engine engine;
  RunOptions options;
  options.tiled_arrays = {"R"};
  options.tile_config = {4, 4};
  auto run = ::diablo::Run(*compiled, &engine, inputs, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Value r = *run->Array("R");
  ASSERT_EQ(r.bag().size(), 64u);
  EXPECT_DOUBLE_EQ(r.bag()[1].tuple()[1].AsDouble(), 2.0);  // M[0,1]*2
}

TEST(TiledExecution, IteratedMergesStayConsistent) {
  // Accumulate into a tiled matrix across while iterations.
  auto compiled = Compile(R"(
    var k: int = 0;
    var R: matrix[double] = matrix();
    while (k < 3) {
      k += 1;
      for i = 0, n - 1 do
        for j = 0, n - 1 do
          R[i,j] += M[i,j];
    }
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Bindings inputs = DenseInputs(8);
  runtime::Engine engine;
  RunOptions options;
  options.tiled_arrays = {"R"};
  options.tile_config = {4, 4};
  auto run = ::diablo::Run(*compiled, &engine, inputs, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Value r = *run->Array("R");
  // R[1,1] = 3 * M[1,1] = 3 * 9.
  for (const Value& row : r.bag()) {
    if (row.tuple()[0] == Tup({IV(1), IV(1)})) {
      EXPECT_DOUBLE_EQ(row.tuple()[1].AsDouble(), 27.0);
    }
  }
}

}  // namespace
}  // namespace diablo::exec
