// End-to-end tests: full pipeline (parse -> check -> translate ->
// normalize -> optimize -> plan -> distributed execution) compared
// against the sequential reference interpreter on small inputs.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace diablo::testing {
namespace {

TEST(EndToEnd, ConditionalSum) {
  PipelineChecker checker(R"(
    var sum: double = 0.0;
    for v in V do
      if (v < 100.0)
        sum += v;
  )",
                          {{"V", DoubleVector({1, 250, 3, 99, 100, 7})}});
  checker.ExpectScalarAgrees("sum");
}

TEST(EndToEnd, SumNoFilter) {
  PipelineChecker checker(R"(
    var sum: double = 0.0;
    for v in V do
      sum += v;
  )",
                          {{"V", DoubleVector({1.5, 2.5, 3, -4})}});
  checker.ExpectScalarAgrees("sum");
}

TEST(EndToEnd, VectorCopyRange) {
  // for i = 1, 4 do V[i] := W[i]  (paper §3.9 example 1).
  PipelineChecker checker(R"(
    for i = 1, 4 do
      V[i] := W[i];
  )",
                          {{"W", DoubleVector({10, 11, 12, 13, 14, 15})},
                           {"V", DoubleVector({0, 0, 0, 0, 0, 0})}});
  checker.ExpectArrayAgrees("V");
}

TEST(EndToEnd, IndirectIncrement) {
  // for i = 0, 5 do W[K[i]] += V[i]  (paper §3.9 example 2).
  PipelineChecker checker(
      R"(
    for i = 0, 5 do
      W[K[i]] += V[i];
  )",
      {{"K", IntVector({0, 1, 0, 2, 1, 0})},
       {"V", DoubleVector({1, 2, 3, 4, 5, 6})},
       {"W", DoubleVector({100, 200, 300})}});
  checker.ExpectArrayAgrees("W");
}

TEST(EndToEnd, GroupByCount) {
  // The introduction's example: C[A[i].K] += A[i].V.
  ValueVec rows;
  rows.push_back(Pair(IV(3), Tup({IV(3), DV(10)})));
  rows.push_back(Pair(IV(8), Tup({IV(5), DV(25)})));
  rows.push_back(Pair(IV(5), Tup({IV(3), DV(13)})));
  PipelineChecker checker(R"(
    var C: map[int,double] = map();
    for a in A do
      C[a._1] += a._2;
  )",
                          {{"A", Bag(std::move(rows))}});
  checker.ExpectArrayAgrees("C");
}

TEST(EndToEnd, MatrixMultiplication) {
  PipelineChecker checker(R"(
    var R: matrix[double] = matrix();
    for i = 0, 1 do
      for j = 0, 1 do {
        R[i,j] := 0.0;
        for k = 0, 2 do
          R[i,j] += M[i,k] * N[k,j];
      }
  )",
                          {{"M", DoubleMatrix({{1, 2, 3}, {4, 5, 6}})},
                           {"N", DoubleMatrix({{7, 8}, {9, 10}, {11, 12}})}});
  checker.ExpectArrayAgrees("R");
}

TEST(EndToEnd, MatrixAddition) {
  PipelineChecker checker(R"(
    var R: matrix[double] = matrix();
    for i = 0, 1 do
      for j = 0, 2 do
        R[i,j] := M[i,j] + N[i,j];
  )",
                          {{"M", DoubleMatrix({{1, 2, 3}, {4, 5, 6}})},
                           {"N", DoubleMatrix({{10, 20, 30}, {40, 50, 60}})}});
  checker.ExpectArrayAgrees("R");
}

TEST(EndToEnd, EqualAllElements) {
  PipelineChecker checker(R"(
    var eq: bool = true;
    for v in V do
      eq := eq && v == x;
  )",
                          {{"V", Bag({Pair(IV(0), SV("a")),
                                      Pair(IV(1), SV("a"))})},
                           {"x", SV("a")}});
  checker.ExpectScalarAgrees("eq");
}

TEST(EndToEnd, StringMatch) {
  PipelineChecker checker(
      R"(
    var c: bool = false;
    for w in words do
      c := c || (w == "key1" || w == "key2" || w == "key3");
  )",
      {{"words", Bag({Pair(IV(0), SV("zzz")), Pair(IV(1), SV("key2"))})}});
  checker.ExpectScalarAgrees("c");
}

TEST(EndToEnd, WordCount) {
  PipelineChecker checker(R"(
    var C: map[string,int] = map();
    for w in words do
      C[w] += 1;
  )",
                          {{"words", Bag({Pair(IV(0), SV("a")),
                                          Pair(IV(1), SV("b")),
                                          Pair(IV(2), SV("a")),
                                          Pair(IV(3), SV("a"))})}});
  checker.ExpectArrayAgrees("C");
}

TEST(EndToEnd, Histogram) {
  ValueVec pixels;
  auto px = [](int64_t r, int64_t g, int64_t b) {
    return Value::MakeRecord(
        {{"red", IV(r)}, {"green", IV(g)}, {"blue", IV(b)}});
  };
  pixels.push_back(Pair(IV(0), px(1, 2, 3)));
  pixels.push_back(Pair(IV(1), px(1, 5, 3)));
  pixels.push_back(Pair(IV(2), px(2, 2, 3)));
  PipelineChecker checker(R"(
    var R: map[int,int] = map();
    var G: map[int,int] = map();
    var B: map[int,int] = map();
    for p in P do {
      R[p.red] += 1;
      G[p.green] += 1;
      B[p.blue] += 1;
    }
  )",
                          {{"P", Bag(std::move(pixels))}});
  checker.ExpectArrayAgrees("R");
  checker.ExpectArrayAgrees("G");
  checker.ExpectArrayAgrees("B");
}

TEST(EndToEnd, VectorShiftRead) {
  // Reading W[i-1] exercises affine index inversion in range elimination.
  PipelineChecker checker(R"(
    for i = 1, 4 do
      V[i] := W[i-1];
  )",
                          {{"W", DoubleVector({10, 11, 12, 13, 14})},
                           {"V", DoubleVector({0, 0, 0, 0, 0})}});
  checker.ExpectArrayAgrees("V");
}

TEST(EndToEnd, WhileLoopScalar) {
  PipelineChecker checker(R"(
    var n: int = 0;
    while (n < 5)
      n += 1;
  )",
                          {});
  checker.ExpectScalarAgrees("n");
}

TEST(EndToEnd, WhileWithParallelBody) {
  PipelineChecker checker(R"(
    var k: int = 0;
    while (k < 3) {
      k += 1;
      for i = 0, 4 do
        V[i] += 1.0;
    }
  )",
                          {{"V", DoubleVector({0, 0, 0, 0, 0})}});
  checker.ExpectArrayAgrees("V");
}

TEST(EndToEnd, IfElseBranches) {
  PipelineChecker checker(R"(
    var pos: double = 0.0;
    var neg: double = 0.0;
    for v in V do
      if (v >= 0.0)
        pos += v;
      else
        neg += v;
  )",
                          {{"V", DoubleVector({1, -2, 3, -4, 5})}});
  checker.ExpectScalarAgrees("pos");
  checker.ExpectScalarAgrees("neg");
}

TEST(EndToEnd, SequentialForWithWhileInside) {
  // A for-range loop containing a while-loop is lowered to sequential
  // target code.
  PipelineChecker checker(R"(
    var total: int = 0;
    for i = 1, 3 do {
      var j: int = 0;
      while (j < i)
        j += 1;
      total += j;
    }
  )",
                          {});
  checker.ExpectScalarAgrees("total");
}

TEST(EndToEnd, IfElseOnArrayValues) {
  // Both branches write the same destination array under disjoint
  // guards (rule 15g splits them into two guarded bulk updates).
  PipelineChecker checker(R"(
    var W: vector[double] = vector();
    for i = 0, 4 do
      if (V[i] > 0.0)
        W[i] := 1.0;
      else
        W[i] := 2.0;
  )",
                          {{"V", DoubleVector({3, -1, 0, 7, -2})}});
  checker.ExpectArrayAgrees("W");
}

TEST(EndToEnd, SparseConditionSkipsBothBranches) {
  // E is sparse: where E[i] is missing the lifted condition is the empty
  // bag and neither branch runs, so W keeps no entry there.
  ValueVec e_rows = {Pair(IV(0), BV(true)), Pair(IV(2), BV(false))};
  PipelineChecker checker(R"(
    var W: vector[double] = vector();
    for i = 0, 4 do
      if (E[i])
        W[i] := 1.0;
      else
        W[i] := 2.0;
  )",
                          {{"E", Bag(e_rows)}});
  checker.ExpectArrayAgrees("W");
}

TEST(EndToEnd, ChainedIndirection) {
  // Two levels of indirection: B[A[i]] supplies the key for C.
  PipelineChecker checker(R"(
    var C: map[int,double] = map();
    for i = 0, 5 do
      C[B[A[i]]] += 1.0;
  )",
                          {{"A", IntVector({0, 1, 2, 0, 1, 2})},
                           {"B", IntVector({5, 5, 9})}});
  checker.ExpectArrayAgrees("C");
}

TEST(EndToEnd, MultiplyAccumulateMonoid) {
  PipelineChecker checker(R"(
    var prod: double = 1.0;
    for v in V do
      prod *= v;
  )",
                          {{"V", DoubleVector({1.5, 2, 4})}});
  checker.ExpectScalarAgrees("prod");
}

TEST(EndToEnd, RestrictionViolationRejected) {
  auto compiled = Compile(R"(
    for i = 1, 8 do
      V[i] := (V[i-1] + V[i+1]) / 2.0;
  )");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kRestrictionViolation);
}

TEST(EndToEnd, IterateUntilConvergence) {
  // Jacobi-style smoothing iterated until the per-sweep change drops
  // below a threshold: array copy + stencil + convergence aggregation,
  // all inside a while-loop.
  PipelineChecker checker(R"(
    var diff: double = 1.0;
    var Vold: vector[double] = vector();
    while (diff > 0.01) {
      for i = 0, 9 do
        Vold[i] := V[i];
      for i = 1, 8 do
        V[i] := (Vold[i-1] + Vold[i+1]) / 2.0;
      diff := 0.0;
      for i = 0, 9 do
        diff += abs(V[i] - Vold[i]);
    }
  )",
                          {{"V", DoubleVector({0, 1, 8, 2, 7, 3, 6, 4, 5,
                                               10})}});
  checker.ExpectArrayAgrees("V", 1e-9);
  checker.ExpectScalarAgrees("diff", 1e-9);
}

TEST(EndToEnd, MinMaxMonoids) {
  PipelineChecker checker(R"(
    var lo: double = 1000000.0;
    var hi: double = -1000000.0;
    for v in V do {
      lo min= v;
      hi max= v;
    }
  )",
                          {{"V", DoubleVector({5, -3, 12, 0.5})}});
  checker.ExpectScalarAgrees("lo");
  checker.ExpectScalarAgrees("hi");
}

}  // namespace
}  // namespace diablo::testing
