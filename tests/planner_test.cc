// Unit tests for the comprehension planner: operator selection (scan,
// join, cartesian, reduceByKey vs groupBy), join-key inference, and plan
// execution details.

#include "plan/plan.h"
#include "plan/spark_emitter.h"

#include <gtest/gtest.h>

#include "comp/comp.h"

namespace diablo::plan {
namespace {

using comp::MakeBag;
using comp::MakeBin;
using comp::MakeCall;
using comp::MakeComp;
using comp::MakeInt;
using comp::MakeRange;
using comp::MakeReduce;
using comp::MakeTuple;
using comp::MakeVar;
using comp::Pattern;
using comp::Qualifier;
using runtime::BinOp;
using runtime::Value;
using runtime::ValueVec;

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    state_.engine = &engine_;
    state_.scalars = &scalars_;
    state_.arrays = &arrays_;
  }

  void AddArray(const std::string& name,
                std::vector<std::pair<int64_t, int64_t>> kvs) {
    ValueVec rows;
    for (auto [k, v] : kvs) {
      rows.push_back(Value::MakePair(Value::MakeInt(k), Value::MakeInt(v)));
    }
    arrays_[name] = engine_.Parallelize(std::move(rows));
  }

  ValueVec Execute(const comp::CompPtr& comp) {
    auto plan = BuildPlan(comp, state_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto ds = ExecutePlan(*plan, state_);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    ValueVec rows = engine_.Collect(*ds).value();
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  runtime::Engine engine_;
  std::map<std::string, Value> scalars_;
  std::map<std::string, runtime::Dataset> arrays_;
  ExecState state_;
};

Pattern PairPat(const std::string& a, const std::string& b) {
  return Pattern::Tuple({Pattern::Var(a), Pattern::Var(b)});
}

TEST_F(PlannerTest, ScanBecomesSourceArray) {
  AddArray("A", {{1, 10}, {2, 20}});
  comp::CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A"))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->ops.size(), 1u);
  EXPECT_EQ(plan->ops[0].kind, StreamOp::Kind::kSourceArray);
  EXPECT_EQ(plan->NumShuffles(), 0);
  EXPECT_FALSE(plan->driver_only);
}

TEST_F(PlannerTest, EquiConditionBecomesJoin) {
  AddArray("A", {{1, 10}, {2, 20}, {3, 30}});
  AddArray("B", {{1, 100}, {3, 300}});
  // { (i, v + w) | (i,v) <- A, (j,w) <- B, j == i }.
  comp::CompPtr comp = MakeComp(
      MakeTuple({MakeVar("i"), MakeBin(BinOp::kAdd, MakeVar("v"),
                                       MakeVar("w"))}),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::Generator(PairPat("j", "w"), MakeVar("B")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("j"), MakeVar("i")))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->ops.size(), 2u);
  EXPECT_EQ(plan->ops[1].kind, StreamOp::Kind::kJoinArray);
  ValueVec rows = Execute(comp);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tuple()[1].AsInt(), 110);
  EXPECT_EQ(rows[1].tuple()[1].AsInt(), 330);
}

TEST_F(PlannerTest, SmallArraysBroadcastWhenEnabled) {
  runtime::EngineConfig config;
  config.broadcast_join_threshold_bytes = 1 << 20;
  runtime::Engine engine(config);
  std::map<std::string, Value> scalars;
  std::map<std::string, runtime::Dataset> arrays;
  ExecState state{&engine, &scalars, &arrays};
  ValueVec a_rows, b_rows;
  for (int64_t i = 0; i < 10; ++i) {
    a_rows.push_back(Value::MakePair(Value::MakeInt(i),
                                     Value::MakeInt(i * 10)));
    if (i % 2 == 0) {
      b_rows.push_back(Value::MakePair(Value::MakeInt(i),
                                       Value::MakeInt(i * 100)));
    }
  }
  arrays["A"] = engine.Parallelize(a_rows);
  arrays["B"] = engine.Parallelize(b_rows);
  comp::CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("v"), MakeVar("w")),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::Generator(PairPat("j", "w"), MakeVar("B")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("j"), MakeVar("i")))});
  auto plan = BuildPlan(comp, state);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->ops[1].kind, StreamOp::Kind::kBroadcastJoinArray);
  EXPECT_EQ(plan->NumShuffles(), 0);  // broadcast joins don't shuffle
  auto ds = ExecutePlan(*plan, state);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ValueVec rows = engine.Collect(*ds).value();
  std::sort(rows.begin(), rows.end());
  ASSERT_EQ(rows.size(), 5u);  // even keys only
  EXPECT_EQ(rows[1].AsInt(), 220);  // A[2]=20 + B[2]=200
}

TEST_F(PlannerTest, BroadcastJoinMatchesShuffleJoin) {
  // Same comprehension planned both ways must agree.
  ValueVec a_rows, b_rows;
  for (int64_t i = 0; i < 40; ++i) {
    a_rows.push_back(Value::MakePair(Value::MakeInt(i % 13),
                                     Value::MakeInt(i)));
    b_rows.push_back(Value::MakePair(Value::MakeInt(i % 7),
                                     Value::MakeInt(1000 + i)));
  }
  comp::CompPtr comp = MakeComp(
      MakeTuple({MakeVar("i"), MakeVar("v"), MakeVar("w")}),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::Generator(PairPat("j", "w"), MakeVar("B")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("j"), MakeVar("i")))});
  ValueVec results[2];
  for (int mode = 0; mode < 2; ++mode) {
    runtime::EngineConfig config;
    config.broadcast_join_threshold_bytes = mode == 0 ? 0 : (1 << 20);
    runtime::Engine engine(config);
    std::map<std::string, Value> scalars;
    std::map<std::string, runtime::Dataset> arrays;
    arrays["A"] = engine.Parallelize(a_rows);
    arrays["B"] = engine.Parallelize(b_rows);
    ExecState state{&engine, &scalars, &arrays};
    auto plan = BuildPlan(comp, state);
    ASSERT_TRUE(plan.ok());
    auto ds = ExecutePlan(*plan, state);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    results[mode] = engine.Collect(*ds).value();
    std::sort(results[mode].begin(), results[mode].end());
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST_F(PlannerTest, NoConditionBecomesCartesian) {
  AddArray("A", {{1, 10}, {2, 20}});
  AddArray("B", {{1, 1}, {2, 2}, {3, 3}});
  comp::CompPtr comp = MakeComp(
      MakeBin(BinOp::kMul, MakeVar("v"), MakeVar("w")),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::Generator(PairPat("j", "w"), MakeVar("B"))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ops[1].kind, StreamOp::Kind::kCartesianArray);
  EXPECT_EQ(Execute(comp).size(), 6u);
}

TEST_F(PlannerTest, LaterBoundVariablesAreNotJoinKeys) {
  // { v | (i,v) <- A, (j,w) <- B, (k,u) <- C, j == k } — when B's
  // generator scans forward for join conditions it sees j == k, but k
  // binds only at C; the condition must become C's join key, not B's.
  AddArray("A", {{1, 10}});
  AddArray("B", {{1, 1}, {2, 2}});
  AddArray("C", {{2, 5}});
  comp::CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::Generator(PairPat("j", "w"), MakeVar("B")),
       Qualifier::Generator(PairPat("k", "u"), MakeVar("C")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("j"), MakeVar("k")))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ops[1].kind, StreamOp::Kind::kCartesianArray);
  // The condition is consumed by C's join (k is new there).
  EXPECT_EQ(plan->ops[2].kind, StreamOp::Kind::kJoinArray);
  ValueVec rows = Execute(comp);
  // Only B's j=2 row joins C's k=2 row.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].AsInt(), 10);
}

TEST_F(PlannerTest, MultiKeyJoin) {
  // Matrix-style join on two key components.
  ValueVec m_rows, n_rows;
  auto mk = [](int64_t i, int64_t j, int64_t v) {
    return Value::MakePair(
        Value::MakeTuple({Value::MakeInt(i), Value::MakeInt(j)}),
        Value::MakeInt(v));
  };
  arrays_["M"] = engine_.Parallelize({mk(0, 0, 1), mk(0, 1, 2)});
  arrays_["N"] = engine_.Parallelize({mk(0, 0, 10), mk(1, 0, 20)});
  Pattern mat_pat_m = Pattern::Tuple({Pattern::Tuple({Pattern::Var("i"),
                                                      Pattern::Var("j")}),
                                      Pattern::Var("m")});
  Pattern mat_pat_n = Pattern::Tuple({Pattern::Tuple({Pattern::Var("a"),
                                                      Pattern::Var("b")}),
                                      Pattern::Var("n")});
  comp::CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("m"), MakeVar("n")),
      {Qualifier::Generator(mat_pat_m, MakeVar("M")),
       Qualifier::Generator(mat_pat_n, MakeVar("N")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("a"), MakeVar("i"))),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("b"), MakeVar("j")))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->ops[1].kind, StreamOp::Kind::kJoinArray);
  EXPECT_EQ(plan->ops[1].left_keys.size(), 2u);
  ValueVec rows = Execute(comp);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].AsInt(), 11);  // M[0,0] + N[0,0]
}

TEST_F(PlannerTest, GroupByWithSingleReduceBecomesReduceByKey) {
  AddArray("A", {{1, 10}, {2, 20}, {3, 30}});
  // { (k, +/v) | (i,v) <- A, group by k : i % 2 }  — parity buckets.
  comp::CompPtr comp = MakeComp(
      MakeTuple({MakeVar("k"), MakeReduce(BinOp::kAdd, MakeVar("v"))}),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"),
                          MakeBin(BinOp::kMod, MakeVar("i"), MakeInt(2)))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->ops.size(), 2u);
  EXPECT_EQ(plan->ops[1].kind, StreamOp::Kind::kReduceByKey);
  ValueVec rows = Execute(comp);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tuple()[1].AsInt(), 20);  // key 0: i=2
  EXPECT_EQ(rows[1].tuple()[1].AsInt(), 40);  // key 1: i=1,3
}

TEST_F(PlannerTest, GroupByWithBagUseFallsBackToGroupBy) {
  AddArray("A", {{1, 10}, {2, 20}});
  // Head uses the lifted bag both reduced and as +/ twice with different
  // ops: no reduceByKey rewrite.
  comp::CompPtr comp = MakeComp(
      MakeTuple({MakeVar("k"), MakeReduce(BinOp::kAdd, MakeVar("v")),
                 MakeReduce(BinOp::kMax, MakeVar("v"))}),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeInt(0))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ops[1].kind, StreamOp::Kind::kGroupBy);
  ValueVec rows = Execute(comp);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple()[1].AsInt(), 30);
  EXPECT_EQ(rows[0].tuple()[2].AsInt(), 20);
}

TEST_F(PlannerTest, DriverOnlyComprehension) {
  scalars_["n"] = Value::MakeInt(5);
  // { n + 1 | n > 0 }.
  comp::CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("n"), MakeInt(1)),
      {Qualifier::Condition(MakeBin(BinOp::kGt, MakeVar("n"), MakeInt(0)))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->driver_only);
  ValueVec rows = Execute(comp);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].AsInt(), 6);
}

TEST_F(PlannerTest, DriverFilterCanEmptyTheResult) {
  scalars_["n"] = Value::MakeInt(-1);
  comp::CompPtr comp = MakeComp(
      MakeVar("n"),
      {Qualifier::Condition(MakeBin(BinOp::kGt, MakeVar("n"), MakeInt(0)))});
  EXPECT_TRUE(Execute(comp).empty());
}

TEST_F(PlannerTest, RangeSource) {
  comp::CompPtr comp = MakeComp(
      MakeBin(BinOp::kMul, MakeVar("i"), MakeVar("i")),
      {Qualifier::Generator(Pattern::Var("i"),
                            MakeRange(MakeInt(1), MakeInt(4)))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ops[0].kind, StreamOp::Kind::kSourceRange);
  ValueVec rows = Execute(comp);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.back().AsInt(), 16);
}

TEST_F(PlannerTest, GeneratorAfterLetSeesPrefix) {
  AddArray("A", {{1, 10}, {2, 20}});
  scalars_["c"] = Value::MakeInt(3);
  // { v * f | let f = c + 1, (i,v) <- A }.
  comp::CompPtr comp = MakeComp(
      MakeBin(BinOp::kMul, MakeVar("v"), MakeVar("f")),
      {Qualifier::Let(Pattern::Var("f"),
                      MakeBin(BinOp::kAdd, MakeVar("c"), MakeInt(1))),
       Qualifier::Generator(PairPat("i", "v"), MakeVar("A"))});
  ValueVec rows = Execute(comp);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].AsInt(), 40);
  EXPECT_EQ(rows[1].AsInt(), 80);
}

TEST_F(PlannerTest, SparkEmitterRendersChains) {
  AddArray("A", {{1, 10}, {2, 20}});
  AddArray("B", {{1, 100}});
  comp::CompPtr comp = MakeComp(
      MakeTuple({MakeVar("k"), MakeReduce(BinOp::kAdd, MakeVar("v"))}),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::Generator(PairPat("j", "w"), MakeVar("B")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("j"), MakeVar("i"))),
       Qualifier::GroupBy(Pattern::Var("k"),
                          MakeBin(BinOp::kMod, MakeVar("i"), MakeInt(2)))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  std::string spark = ToSparkLike(*plan);
  EXPECT_EQ(spark.rfind("A", 0), 0u) << spark;  // chain starts at A
  EXPECT_NE(spark.find(".join(B"), std::string::npos) << spark;
  EXPECT_NE(spark.find(".reduceByKey(_+_)"), std::string::npos) << spark;
}

TEST_F(PlannerTest, SparkEmitterDriverOnly) {
  scalars_["n"] = Value::MakeInt(1);
  comp::CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("n"), MakeInt(1)),
      {Qualifier::Condition(MakeBin(BinOp::kGt, MakeVar("n"), MakeInt(0)))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(ToSparkLike(*plan).find("driver {"), std::string::npos);
}

TEST_F(PlannerTest, PlanPrinting) {
  AddArray("A", {{1, 10}});
  comp::CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(PairPat("i", "v"), MakeVar("A")),
       Qualifier::Condition(MakeCall("inRange", {MakeVar("i"), MakeInt(0),
                                                 MakeInt(9)}))});
  auto plan = BuildPlan(comp, state_);
  ASSERT_TRUE(plan.ok());
  std::string printed = plan->ToString();
  EXPECT_NE(printed.find("sourceArray A"), std::string::npos);
  EXPECT_NE(printed.find("filter inRange"), std::string::npos);
  EXPECT_NE(printed.find("yield v"), std::string::npos);
}

}  // namespace
}  // namespace diablo::plan
