// Tests for the AST pretty-printer: parse -> print -> parse round trips.

#include "ast/printer.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace diablo::ast {
namespace {

TEST(Printer, StatementShapes) {
  auto p = parser::ParseProgram(R"(
    var sum: double = 0.0;
    for v in V do
      if (v < 100.0)
        sum += v;
  )");
  ASSERT_TRUE(p.ok());
  std::string printed = PrintProgram(*p);
  EXPECT_NE(printed.find("var sum: double = 0.5"), std::string::npos + 1);
  EXPECT_NE(printed.find("for v in V do"), std::string::npos);
  EXPECT_NE(printed.find("sum += v;"), std::string::npos);
}

TEST(Printer, ParsePrintParseIsStable) {
  const char* sources[] = {
      "for i = 1, 10 do V[i] := W[i];",
      "for i = 0, 9 do { R[i,0] := 0.0; for k = 0, 4 do R[i,k] += "
      "M[i,k]*N[k,0]; }",
      "var C: map[string,int] = map();\nfor w in words do C[w] += 1;",
      "while (k < 10) { k += 1; }",
      "if (x == 1) y := 2; else y := 3;",
      "best argmin= (d, j);",
      "lo min= v; hi max= v;",
      "r := <A = 1, B = (x, y)>;",
  };
  for (const char* src : sources) {
    auto first = parser::ParseProgram(src);
    ASSERT_TRUE(first.ok()) << src << ": " << first.status().ToString();
    std::string printed1 = PrintProgram(*first);
    auto second = parser::ParseProgram(printed1);
    ASSERT_TRUE(second.ok()) << printed1 << ": "
                             << second.status().ToString();
    std::string printed2 = PrintProgram(*second);
    EXPECT_EQ(printed1, printed2) << src;
  }
}

TEST(Printer, DoubleLiteralsStayDoubles) {
  auto p = parser::ParseProgram("x := 1.0;");
  ASSERT_TRUE(p.ok());
  std::string printed = PrintProgram(*p);
  EXPECT_NE(printed.find("1.0"), std::string::npos) << printed;
}

TEST(Printer, IndentationOfNestedLoops) {
  auto p = parser::ParseProgram(
      "for i = 0, 1 do for j = 0, 1 do M[i,j] := 0.0;");
  ASSERT_TRUE(p.ok());
  std::string printed = PrintProgram(*p);
  EXPECT_NE(printed.find("\n  for j"), std::string::npos) << printed;
  EXPECT_NE(printed.find("\n    M[i,j]"), std::string::npos) << printed;
}

}  // namespace
}  // namespace diablo::ast
