// Tests for the tracing/profiling subsystem (runtime/trace.{h,cc} and
// its engine wiring): tracing must never change program outputs, spans
// must nest correctly through fused chains / hash shuffles / retries,
// and the Chrome trace export for wordcount is pinned by a golden file
// (regenerate with DIABLO_REGOLD=1).

#include <cstdlib>
#include <fstream>
#include <map>
#include <random>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "diablo/diablo.h"
#include "runtime/engine.h"
#include "runtime/trace.h"
#include "workloads/programs.h"

namespace diablo::runtime {
namespace {

using bench::GetProgram;
using bench::ProgramSpec;

constexpr const char* kWordCountSource = R"(
var C: map[string,int] = map();
for w in words do
  C[w] += 1;
)";

Bindings WordCountInputs() {
  ValueVec rows;
  const char* words[] = {"spark", "flink", "spark", "hadoop", "spark"};
  for (int i = 0; i < 5; ++i) {
    rows.push_back(Value::MakePair(Value::MakeInt(i),
                                   Value::MakeString(words[i])));
  }
  return {{"words", Value::MakeBag(std::move(rows))}};
}

/// Runs a compiled program on a fresh engine and returns the printed
/// form of every requested output, in order.
StatusOr<std::string> RunAndPrint(const std::string& source,
                                  const Bindings& inputs,
                                  const EngineConfig& config,
                                  const std::vector<std::string>& scalars,
                                  const std::vector<std::string>& arrays,
                                  Engine* engine_out = nullptr) {
  DIABLO_ASSIGN_OR_RETURN(CompiledProgram compiled, Compile(source));
  Engine local(config);
  Engine& engine = engine_out != nullptr ? *engine_out : local;
  RunOptions options;
  options.program_name = "trace_test.diablo";
  DIABLO_ASSIGN_OR_RETURN(ProgramRun run,
                          Run(compiled, &engine, inputs, options));
  std::string out;
  for (const std::string& name : scalars) {
    DIABLO_ASSIGN_OR_RETURN(Value v, run.Scalar(name));
    out += name + " = " + v.ToString() + "\n";
  }
  for (const std::string& name : arrays) {
    DIABLO_ASSIGN_OR_RETURN(Value v, run.Array(name));
    out += name + " = " + v.ToString() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracing on/off produces byte-identical outputs.
// ---------------------------------------------------------------------------

struct TraceIdentityParams {
  std::string name;  // test display name
  std::string program;
  int64_t scale;
  bool fuse_narrow;
  bool hash_aggregation;
  bool faults;
};

class TraceIdentityTest : public ::testing::TestWithParam<TraceIdentityParams> {
};

EngineConfig MakeConfig(const TraceIdentityParams& p, bool tracing) {
  EngineConfig config;
  config.tracing = tracing;
  config.fuse_narrow = p.fuse_narrow;
  config.hash_aggregation = p.hash_aggregation;
  config.host_threads = 2;
  if (p.faults) {
    config.faults.seed = 29;
    config.faults.task_failure_rate = 0.08;
    config.faults.max_task_attempts = 10;
  }
  return config;
}

TEST_P(TraceIdentityTest, OutputsByteIdentical) {
  const TraceIdentityParams& p = GetParam();
  const ProgramSpec& spec = GetProgram(p.program);
  std::mt19937_64 rng(11);
  Bindings inputs = spec.make_inputs(p.scale, rng);

  auto traced = RunAndPrint(spec.source, inputs, MakeConfig(p, true),
                            spec.scalar_outputs, spec.array_outputs);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  auto untraced = RunAndPrint(spec.source, inputs, MakeConfig(p, false),
                              spec.scalar_outputs, spec.array_outputs);
  ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();
  EXPECT_EQ(*traced, *untraced);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TraceIdentityTest,
    ::testing::Values(
        TraceIdentityParams{"wordcount_fused_hash", "word_count", 200, true,
                            true, false},
        TraceIdentityParams{"wordcount_eager_ordered", "word_count", 200,
                            false, false, false},
        TraceIdentityParams{"wordcount_fused_hash_faulty", "word_count", 200,
                            true, true, true},
        TraceIdentityParams{"groupby_eager_hash_faulty", "group_by", 200,
                            false, true, true},
        TraceIdentityParams{"pagerank_fused_hash", "pagerank", 6, true, true,
                            false},
        TraceIdentityParams{"pagerank_fused_ordered_faulty", "pagerank", 6,
                            true, false, true}),
    [](const ::testing::TestParamInfo<TraceIdentityParams>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Span structure invariants.
// ---------------------------------------------------------------------------

std::vector<TraceSpan> RunWordCountSpans(EngineConfig config,
                                         std::string* output) {
  Engine engine(config);
  auto printed = RunAndPrint(kWordCountSource, WordCountInputs(), config,
                             {}, {"C"}, &engine);
  EXPECT_TRUE(printed.ok()) << printed.status().ToString();
  if (printed.ok() && output != nullptr) *output = *printed;
  EXPECT_NE(engine.trace(), nullptr);
  return engine.trace() != nullptr ? engine.trace()->Snapshot()
                                   : std::vector<TraceSpan>();
}

TEST(TraceSpansTest, ChildrenNestWithinParents) {
  EngineConfig config;
  config.host_threads = 1;
  std::vector<TraceSpan> spans = RunWordCountSpans(config, nullptr);
  ASSERT_FALSE(spans.empty());

  std::map<int64_t, const TraceSpan*> by_id;
  for (const TraceSpan& s : spans) by_id[s.id] = &s;
  int roots = 0;
  for (const TraceSpan& s : spans) {
    if (s.parent < 0) {
      ++roots;
      EXPECT_EQ(s.kind, SpanKind::kRun);
      continue;
    }
    ASSERT_TRUE(by_id.count(s.parent)) << "dangling parent " << s.parent;
    const TraceSpan& parent = *by_id[s.parent];
    // Tasks are timed around the task closure while driver spans wrap
    // the enclosing scope, so a strict containment check is exact.
    EXPECT_GE(s.start_us, parent.start_us - 1e-6)
        << s.name << " starts before parent " << parent.name;
    EXPECT_LE(s.start_us + s.dur_us, parent.start_us + parent.dur_us + 1e-6)
        << s.name << " ends after parent " << parent.name;
  }
  EXPECT_EQ(roots, 1);
}

TEST(TraceSpansTest, KindsFormTheExpectedHierarchy) {
  EngineConfig config;
  config.host_threads = 1;
  std::vector<TraceSpan> spans = RunWordCountSpans(config, nullptr);
  ASSERT_FALSE(spans.empty());
  std::map<int64_t, const TraceSpan*> by_id;
  for (const TraceSpan& s : spans) by_id[s.id] = &s;
  for (const TraceSpan& s : spans) {
    const TraceSpan* parent = s.parent >= 0 ? by_id.at(s.parent) : nullptr;
    switch (s.kind) {
      case SpanKind::kRun:
        EXPECT_EQ(parent, nullptr);
        break;
      case SpanKind::kStatement:
        ASSERT_NE(parent, nullptr);
        // Statements nest under the run or, inside while-loops, under
        // the enclosing while statement.
        EXPECT_TRUE(parent->kind == SpanKind::kRun ||
                    parent->kind == SpanKind::kStatement)
            << s.name;
        break;
      case SpanKind::kStage:
        ASSERT_NE(parent, nullptr);
        EXPECT_TRUE(parent->kind == SpanKind::kRun ||
                    parent->kind == SpanKind::kStatement ||
                    parent->kind == SpanKind::kStage)
            << s.name;
        break;
      case SpanKind::kWave:
        ASSERT_NE(parent, nullptr);
        EXPECT_TRUE(parent->kind == SpanKind::kStage ||
                    parent->kind == SpanKind::kRecovery)
            << s.name << " under " << parent->name;
        EXPECT_GE(s.stage_id, 0);
        break;
      case SpanKind::kTask:
        ASSERT_NE(parent, nullptr);
        EXPECT_EQ(parent->kind, SpanKind::kWave) << s.name;
        EXPECT_GE(s.partition, 0);
        break;
      case SpanKind::kRecovery:
        ASSERT_NE(parent, nullptr);
        break;
    }
  }
}

TEST(TraceSpansTest, TaskTimesSumToAtMostTheWave) {
  // Single host thread: tasks run back-to-back inside their wave, so the
  // sum of task durations cannot exceed the wave's wall time.
  EngineConfig config;
  config.host_threads = 1;
  std::vector<TraceSpan> spans = RunWordCountSpans(config, nullptr);
  ASSERT_FALSE(spans.empty());
  std::map<int64_t, double> task_sum;
  for (const TraceSpan& s : spans) {
    if (s.kind == SpanKind::kTask) task_sum[s.parent] += s.dur_us;
  }
  int waves_checked = 0;
  for (const TraceSpan& s : spans) {
    if (s.kind != SpanKind::kWave) continue;
    auto it = task_sum.find(s.id);
    if (it == task_sum.end()) continue;
    ++waves_checked;
    EXPECT_LE(it->second, s.dur_us + 1e-6) << s.name;
  }
  EXPECT_GT(waves_checked, 0);
}

TEST(TraceSpansTest, RetriedTasksCarryAttemptNumbers) {
  EngineConfig config;
  config.host_threads = 1;
  config.faults.seed = 7;
  config.faults.task_failure_rate = 0.2;
  config.faults.max_task_attempts = 10;
  std::string traced_out, untraced_out;
  std::vector<TraceSpan> spans = RunWordCountSpans(config, &traced_out);
  ASSERT_FALSE(spans.empty());
  int retried = 0;
  for (const TraceSpan& s : spans) {
    if (s.kind == SpanKind::kTask && s.attempt > 0) ++retried;
  }
  EXPECT_GT(retried, 0) << "fault injection produced no retried task spans";

  // And the traced faulty run still matches the untraced faulty run.
  EngineConfig untraced = config;
  untraced.tracing = false;
  auto result = RunAndPrint(kWordCountSource, WordCountInputs(), untraced,
                            {}, {"C"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(traced_out, *result);
}

TEST(TraceSpansTest, StageSpansCarrySourceLocations) {
  EngineConfig config;
  config.host_threads = 1;
  std::vector<TraceSpan> spans = RunWordCountSpans(config, nullptr);
  int located_stages = 0;
  for (const TraceSpan& s : spans) {
    if (s.kind == SpanKind::kStage && s.src_line > 0) {
      EXPECT_EQ(s.src_file, "trace_test.diablo");
      ++located_stages;
    }
  }
  EXPECT_GT(located_stages, 0);
}

TEST(TraceSpansTest, TracingOffRecordsNothing) {
  EngineConfig config;
  config.tracing = false;
  Engine engine(config);
  EXPECT_EQ(engine.trace(), nullptr);
  auto printed = RunAndPrint(kWordCountSource, WordCountInputs(), config,
                             {}, {"C"}, &engine);
  ASSERT_TRUE(printed.ok()) << printed.status().ToString();
  EXPECT_EQ(engine.trace(), nullptr);
}

// ---------------------------------------------------------------------------
// AggregateTaskTimes.
// ---------------------------------------------------------------------------

TEST(AggregateTaskTimesTest, PercentilesSkewAndStragglers) {
  std::vector<TraceSpan> spans;
  TraceSpan stage;
  stage.id = 0;
  stage.kind = SpanKind::kStage;
  spans.push_back(stage);
  TraceSpan wave;
  wave.id = 1;
  wave.parent = 0;
  wave.kind = SpanKind::kWave;
  spans.push_back(wave);
  const double durs[] = {1.0, 1.0, 2.0, 10.0};
  for (int i = 0; i < 4; ++i) {
    TraceSpan task;
    task.id = 2 + i;
    task.parent = 1;
    task.kind = SpanKind::kTask;
    task.partition = i;
    task.dur_us = durs[i];
    spans.push_back(task);
  }
  TaskTimeStats stats = AggregateTaskTimes(spans, 0);
  EXPECT_EQ(stats.count, 4);
  EXPECT_DOUBLE_EQ(stats.total_us, 14.0);
  EXPECT_DOUBLE_EQ(stats.mean_us, 3.5);
  EXPECT_DOUBLE_EQ(stats.p50_us, 1.0);   // nearest-rank: ceil(0.5*4)=2nd
  EXPECT_DOUBLE_EQ(stats.p90_us, 10.0);  // ceil(0.9*4)=4th
  EXPECT_DOUBLE_EQ(stats.max_us, 10.0);
  EXPECT_DOUBLE_EQ(stats.skew_ratio, 10.0 / 3.5);
  // Stragglers: dur > 2 * median(1.0) -> partitions 3 (10.0) only... and
  // 2 (2.0) is exactly 2x the median, which is NOT a straggler.
  ASSERT_EQ(stats.straggler_partitions.size(), 1u);
  EXPECT_EQ(stats.straggler_partitions[0], 3);
}

TEST(AggregateTaskTimesTest, EmptyStageHasNoStats) {
  std::vector<TraceSpan> spans;
  TraceSpan stage;
  stage.id = 0;
  stage.kind = SpanKind::kStage;
  spans.push_back(stage);
  TaskTimeStats stats = AggregateTaskTimes(spans, 0);
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.skew_ratio, 0);
  EXPECT_TRUE(stats.straggler_partitions.empty());
}

// ---------------------------------------------------------------------------
// Chrome trace golden file (wordcount).
// ---------------------------------------------------------------------------

/// Replaces wall-clock-dependent fields with 0 so the golden file pins
/// structure, names, nesting, counters, and locations but not timing.
std::string NormalizeTrace(const std::string& json) {
  std::string out =
      std::regex_replace(json, std::regex("\"ts\":[0-9.eE+-]+"), "\"ts\":0");
  return std::regex_replace(out, std::regex("\"dur\":[0-9.eE+-]+"),
                            "\"dur\":0");
}

TEST(TraceGoldenTest, WordCountChromeTrace) {
  EngineConfig config;
  config.host_threads = 1;
  config.num_partitions = 4;
  Engine engine(config);
  auto printed = RunAndPrint(kWordCountSource, WordCountInputs(), config,
                             {}, {"C"}, &engine);
  ASSERT_TRUE(printed.ok()) << printed.status().ToString();
  ASSERT_NE(engine.trace(), nullptr);

  std::ostringstream os;
  WriteChromeTrace(engine.trace()->Snapshot(), os);
  std::string got = NormalizeTrace(os.str());

  const std::string golden_path =
      std::string(GOLDEN_DIR) + "/wordcount_trace.json";
  if (std::getenv("DIABLO_REGOLD") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << got;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with DIABLO_REGOLD=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "Chrome trace changed; if intended, rerun with DIABLO_REGOLD=1";
}

}  // namespace
}  // namespace diablo::runtime
