// Tests for the binary Value codec: round trips over every kind,
// randomized deep values, corruption rejection, determinism, and the
// engine's serialize-shuffles mode.

#include "runtime/serialize.h"

#include <gtest/gtest.h>

#include <random>

#include "runtime/engine.h"
#include "runtime/operators.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }

void ExpectRoundTrip(const Value& v) {
  std::string wire = Serialize(v);
  auto back = Deserialize(wire);
  ASSERT_TRUE(back.ok()) << v.ToString() << ": "
                         << back.status().ToString();
  EXPECT_EQ(*back, v) << "wire size " << wire.size();
}

TEST(Serialize, AllKindsRoundTrip) {
  ExpectRoundTrip(Value::MakeUnit());
  ExpectRoundTrip(Value::MakeBool(true));
  ExpectRoundTrip(Value::MakeBool(false));
  ExpectRoundTrip(I(0));
  ExpectRoundTrip(I(-1));
  ExpectRoundTrip(I(std::numeric_limits<int64_t>::min()));
  ExpectRoundTrip(I(std::numeric_limits<int64_t>::max()));
  ExpectRoundTrip(D(0.0));
  ExpectRoundTrip(D(-3.25e-300));
  ExpectRoundTrip(D(std::numeric_limits<double>::infinity()));
  ExpectRoundTrip(Value::MakeString(""));
  ExpectRoundTrip(Value::MakeString("hello \x01\x02 world"));
  ExpectRoundTrip(Value::MakeTuple({}));
  ExpectRoundTrip(Value::MakeTuple({I(1), D(2.5), Value::MakeString("x")}));
  ExpectRoundTrip(Value::MakeRecord({{"red", I(1)}, {"green", I(2)}}));
  ExpectRoundTrip(Value::EmptyBag());
  ExpectRoundTrip(Value::MakeBag({I(1), I(2), I(3)}));
}

Value RandomValue(std::mt19937_64& rng, int depth) {
  switch (rng() % (depth > 0 ? 7 : 4)) {
    case 0:
      return I(static_cast<int64_t>(rng()));
    case 1:
      return D(static_cast<double>(rng()) / 7.3);
    case 2:
      return Value::MakeBool(rng() % 2 == 0);
    case 3: {
      std::string s;
      for (uint64_t i = 0; i < rng() % 12; ++i) {
        s.push_back(static_cast<char>('a' + rng() % 26));
      }
      return Value::MakeString(std::move(s));
    }
    case 4: {
      ValueVec elems;
      for (uint64_t i = 0; i < 1 + rng() % 3; ++i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::MakeTuple(std::move(elems));
    }
    case 5: {
      ValueVec elems;
      for (uint64_t i = 0; i < rng() % 4; ++i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::MakeBag(std::move(elems));
    }
    default: {
      FieldVec fields;
      for (uint64_t i = 0; i < 1 + rng() % 3; ++i) {
        fields.emplace_back(std::string(1, static_cast<char>('A' + i)),
                            RandomValue(rng, depth - 1));
      }
      return Value::MakeRecord(std::move(fields));
    }
  }
}

TEST(Serialize, RandomDeepValuesRoundTrip) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    ExpectRoundTrip(RandomValue(rng, 3));
  }
}

TEST(Serialize, Deterministic) {
  Value a = Value::MakeTuple({I(3), Value::MakeString("k"), D(1.5)});
  Value b = Value::MakeTuple({I(3), Value::MakeString("k"), D(1.5)});
  EXPECT_EQ(Serialize(a), Serialize(b));
}

TEST(Serialize, RejectsTruncation) {
  std::string wire =
      Serialize(Value::MakeTuple({I(1), Value::MakeString("abcdef")}));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    auto back = Deserialize(wire.substr(0, cut));
    EXPECT_FALSE(back.ok()) << "cut at " << cut;
  }
}

TEST(Serialize, RejectsTrailingBytes) {
  std::string wire = Serialize(I(7)) + "x";
  EXPECT_FALSE(Deserialize(wire).ok());
}

TEST(Serialize, RejectsUnknownTagsAndCorruptBools) {
  EXPECT_FALSE(Deserialize("Z").ok());
  std::string bad_bool = "b";
  bad_bool.push_back(7);
  EXPECT_FALSE(Deserialize(bad_bool).ok());
}

TEST(Serialize, EveryByteMutationIsRejectedOrDecodes) {
  // Property: flipping any single byte of a valid encoding must either
  // produce a Status error or decode to some well-formed Value — never
  // crash, hang, or read out of bounds. (Run under asan/ubsan in CI.)
  std::mt19937_64 rng(99);
  std::vector<Value> subjects = {
      Value::MakeTuple({I(1), Value::MakeString("abcdef"), D(2.5)}),
      Value::MakeRecord({{"k", Value::MakeBag({I(1), I(2)})}}),
      RandomValue(rng, 3),
      RandomValue(rng, 3),
  };
  for (const Value& v : subjects) {
    std::string wire = Serialize(v);
    for (size_t pos = 0; pos < wire.size(); ++pos) {
      for (unsigned char flip : {0x01, 0x80, 0xff}) {
        std::string mutated = wire;
        mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
        auto back = Deserialize(mutated);
        if (back.ok()) {
          // A surviving decode must at least round-trip consistently.
          EXPECT_EQ(Serialize(*back), mutated) << "pos " << pos;
        }
      }
    }
  }
}

TEST(Serialize, RejectsExcessiveNestingDepth) {
  // A hostile buffer of deeply nested single-element tuples must be
  // rejected by the depth bound, not blow the decoder's stack.
  std::string wire;
  for (int i = 0; i < 100000; ++i) {
    wire += "t";  // tuple tag
    wire.push_back(1);  // u32 length = 1, little endian
    wire.push_back(0);
    wire.push_back(0);
    wire.push_back(0);
  }
  wire += "u";  // innermost unit
  auto back = Deserialize(wire);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().ToString().find("deep"), std::string::npos);
}

TEST(Serialize, DeepButLegalNestingRoundTrips) {
  Value v = Value::MakeUnit();
  for (int i = 0; i < 60; ++i) v = Value::MakeTuple({v});
  ExpectRoundTrip(v);
}

TEST(Serialize, RejectsHugeDeclaredLengths) {
  // A bag claiming 2^31 elements in a 5-byte buffer must fail fast.
  std::string wire = "g";
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0x7f));
  EXPECT_FALSE(Deserialize(wire).ok());
}

// --- HashedRow batch wire path (the dist shuffle's on-the-wire form) ---

HashedVec SampleHashedVec(std::mt19937_64& rng, size_t n) {
  HashedVec rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(HashedRow{static_cast<uint64_t>(rng()),
                             RandomValue(rng, 2)});
  }
  return rows;
}

TEST(SerializeHashed, VecRoundTripsIncludingEmpty) {
  std::mt19937_64 rng(31);
  for (size_t n : {size_t{0}, size_t{1}, size_t{17}}) {
    HashedVec rows = SampleHashedVec(rng, n);
    std::string wire;
    SerializeHashedVec(rows, &wire);
    size_t offset = 0;
    auto back = DeserializeHashedVec(wire, &offset);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(offset, wire.size());
    ASSERT_EQ(back->size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ((*back)[i].hash, rows[i].hash);
      EXPECT_EQ((*back)[i].row, rows[i].row);
    }
  }
}

TEST(SerializeHashed, RejectsTruncationAtEveryPrefix) {
  std::mt19937_64 rng(32);
  HashedVec rows = SampleHashedVec(rng, 5);
  std::string wire;
  SerializeHashedVec(rows, &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::string prefix = wire.substr(0, cut);
    size_t offset = 0;
    auto back = DeserializeHashedVec(prefix, &offset);
    // Either a clean rejection or a decode that consumed a well-formed
    // prefix — never a row count the bytes cannot back.
    if (back.ok()) EXPECT_LE(offset, prefix.size()) << "cut at " << cut;
    if (cut < 4) EXPECT_FALSE(back.ok()) << "count prefix cut at " << cut;
  }
}

TEST(SerializeHashed, RejectsOversizedCountPrefix) {
  // A batch claiming 2^31 rows with four bytes of backing must fail
  // fast instead of reserving gigabytes or spinning on a huge loop.
  std::string wire;
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0x7f));
  wire += "XXXX";
  size_t offset = 0;
  auto back = DeserializeHashedVec(wire, &offset);
  EXPECT_FALSE(back.ok());
}

TEST(SerializeHashed, EveryByteMutationIsRejectedOrDecodes) {
  // Same property as the Value codec: any single flipped byte of a
  // batch must produce a Status error or a well-formed batch — no
  // crash, no out-of-bounds read (CI runs this under asan/ubsan).
  std::mt19937_64 rng(33);
  HashedVec rows = SampleHashedVec(rng, 4);
  std::string wire;
  SerializeHashedVec(rows, &wire);
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    for (unsigned char flip : {0x01, 0x80, 0xff}) {
      std::string mutated = wire;
      mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
      size_t offset = 0;
      auto back = DeserializeHashedVec(mutated, &offset);
      if (back.ok()) {
        std::string rewire;
        SerializeHashedVec(*back, &rewire);
        EXPECT_EQ(rewire, mutated.substr(0, offset)) << "pos " << pos;
      }
    }
  }
}

// --- ColumnBatch wire path (columnar fused waves on the dist wire) ---

ColumnBatch SampleBatch(std::mt19937_64& rng, int shape, size_t n) {
  ColumnBatch batch;
  switch (shape) {
    case 0:  // int64 scalar rows
      for (size_t i = 0; i < n; ++i) {
        batch.values.Append(I(static_cast<int64_t>(rng())));
      }
      break;
    case 1:  // paired: boxed keys, double values
      batch.pairs = true;
      for (size_t i = 0; i < n; ++i) {
        batch.keys.push_back(I(static_cast<int64_t>(rng() % 50)));
        batch.values.Append(D(static_cast<double>(rng()) / 7.3));
      }
      break;
    case 2:  // dictionary strings with repeats
      for (size_t i = 0; i < n; ++i) {
        batch.values.Append(
            Value::MakeString("word" + std::to_string(rng() % 7)));
      }
      break;
    case 3:  // bools
      for (size_t i = 0; i < n; ++i) {
        batch.values.Append(Value::MakeBool(rng() % 2 == 0));
      }
      break;
    default:  // boxed spill column: heterogeneous rows
      for (size_t i = 0; i < n; ++i) {
        batch.values.Append(RandomValue(rng, 2));
      }
      break;
  }
  return batch;
}

void ExpectBatchRoundTrip(const ColumnBatch& batch) {
  std::string wire;
  SerializeColumnBatch(batch, &wire);
  size_t offset = 0;
  auto back = DeserializeColumnBatch(wire, &offset);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(offset, wire.size());
  ASSERT_EQ(back->size(), batch.size());
  EXPECT_EQ(back->pairs, batch.pairs);
  // Row-wise equality is the contract (the dictionary may re-intern).
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(back->RowAt(i), batch.RowAt(i)) << "row " << i;
  }
}

TEST(SerializeColumnBatchTest, AllShapesRoundTripIncludingEmpty) {
  std::mt19937_64 rng(41);
  for (int shape = 0; shape < 5; ++shape) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{23}}) {
      ExpectBatchRoundTrip(SampleBatch(rng, shape, n));
    }
  }
}

TEST(SerializeColumnBatchTest, RejectsTruncationAtEveryPrefix) {
  std::mt19937_64 rng(42);
  for (int shape = 0; shape < 5; ++shape) {
    ColumnBatch batch = SampleBatch(rng, shape, 6);
    std::string wire;
    SerializeColumnBatch(batch, &wire);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      std::string prefix = wire.substr(0, cut);
      size_t offset = 0;
      auto back = DeserializeColumnBatch(prefix, &offset);
      if (back.ok()) {
        EXPECT_LE(offset, prefix.size()) << "cut " << cut;
      }
      if (cut < 4) {
        EXPECT_FALSE(back.ok()) << "count prefix cut " << cut;
      }
    }
  }
}

TEST(SerializeColumnBatchTest, RejectsOversizedCountPrefix) {
  // A batch claiming 2^31 rows with four bytes of backing must fail
  // fast instead of reserving gigabytes.
  std::string wire;
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0x7f));
  wire += "XXXX";
  size_t offset = 0;
  EXPECT_FALSE(DeserializeColumnBatch(wire, &offset).ok());
}

TEST(SerializeColumnBatchTest, EveryByteMutationIsRejectedOrDecodes) {
  // Fuzz property shared with the Value and HashedVec codecs: one
  // flipped byte must produce a Status error or a well-formed batch —
  // never a crash or out-of-bounds read (CI runs this under asan/ubsan).
  // Dictionary-bearing shapes additionally exercise the duplicate-entry
  // and code-out-of-range rejections.
  std::mt19937_64 rng(43);
  for (int shape = 0; shape < 5; ++shape) {
    ColumnBatch batch = SampleBatch(rng, shape, 5);
    std::string wire;
    SerializeColumnBatch(batch, &wire);
    for (size_t pos = 0; pos < wire.size(); ++pos) {
      for (unsigned char flip : {0x01, 0x80, 0xff}) {
        std::string mutated = wire;
        mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
        size_t offset = 0;
        auto back = DeserializeColumnBatch(mutated, &offset);
        if (back.ok()) {
          std::string rewire;
          SerializeColumnBatch(*back, &rewire);
          EXPECT_EQ(rewire, mutated.substr(0, offset))
              << "shape " << shape << " pos " << pos;
        }
      }
    }
  }
}

TEST(Serialize, EngineShuffleRoundTripsRows) {
  EngineConfig config;
  config.serialize_shuffles = true;
  Engine engine(config);
  ValueVec rows;
  std::mt19937_64 rng(4);
  for (int i = 0; i < 200; ++i) {
    rows.push_back(Value::MakePair(I(i % 9), RandomValue(rng, 2)));
  }
  auto grouped = engine.GroupByKey(engine.Parallelize(rows));
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  // Compare against a non-serializing engine.
  Engine plain;
  auto expected = plain.GroupByKey(plain.Parallelize(rows));
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(BagEquals(Value::MakeBag(engine.Collect(*grouped).value()),
                        Value::MakeBag(plain.Collect(*expected).value())));
  EXPECT_GT(engine.metrics().total_shuffle_bytes(), 0);
}

}  // namespace
}  // namespace diablo::runtime
