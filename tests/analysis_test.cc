// Unit tests for the dependence analysis building blocks: reader/writer/
// aggregator sets (paper §3.2), overlap, indexes(d), and the affine
// checks.

#include <gtest/gtest.h>

#include "analysis/affine.h"
#include "analysis/lvalues.h"
#include "parser/parser.h"

namespace diablo::analysis {
namespace {

ast::Program MustParse(const std::string& src) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

std::vector<std::string> Names(const std::vector<ast::LValuePtr>& ds) {
  std::vector<std::string> out;
  for (const auto& d : ds) out.push_back(d->ToString());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Rwa, PaperExample) {
  // V[W[i]] += n * C[i] * C[i+1]:
  //   A = {V[W[i]]}, R = {W[i], n, C[i], C[i+1]}, W = {}.
  ast::Program p = MustParse("for i = 0, 9 do V[W[i]] += n * C[i] * C[i+1];");
  auto accesses = CollectAccesses(*p.stmts[0]);
  ASSERT_EQ(accesses.size(), 1u);
  const StmtAccessInfo& info = accesses[0];
  EXPECT_EQ(Names(info.aggregators),
            (std::vector<std::string>{"V[W[i]]"}));
  EXPECT_TRUE(info.writers.empty());
  // `i` is read once inside the destination index W[i] and once in each
  // of C[i] and C[i+1].
  EXPECT_EQ(Names(info.readers),
            (std::vector<std::string>{"C[(i + 1)]", "C[i]", "W[i]", "i",
                                      "i", "i", "n"}));
  EXPECT_EQ(info.context, (std::vector<std::string>{"i"}));
}

TEST(Rwa, ContextsOfNestedLoops) {
  ast::Program p = MustParse(R"(
    for i = 0, 9 do {
      for j = 0, 9 do
        V[i] += 1;
      W[i] := V[i];
    }
  )");
  auto accesses = CollectAccesses(*p.stmts[0]);
  ASSERT_EQ(accesses.size(), 2u);
  EXPECT_EQ(accesses[0].context, (std::vector<std::string>{"i", "j"}));
  EXPECT_EQ(accesses[1].context, (std::vector<std::string>{"i"}));
  EXPECT_LT(accesses[0].seq, accesses[1].seq);
}

TEST(Rwa, WritersVsAggregators) {
  ast::Program p = MustParse("for i = 0, 9 do { A[i] := 1; B[i] += 2; }");
  auto accesses = CollectAccesses(*p.stmts[0]);
  ASSERT_EQ(accesses.size(), 2u);
  EXPECT_EQ(accesses[0].writers.size(), 1u);
  EXPECT_TRUE(accesses[0].aggregators.empty());
  EXPECT_EQ(accesses[1].aggregators.size(), 1u);
  EXPECT_TRUE(accesses[1].writers.empty());
}

TEST(Overlap, SameRootOnly) {
  auto v1 = ast::LValue::MakeIndex(
      "V", {ast::Expr::MakeVar("i")});
  auto v2 = ast::LValue::MakeIndex(
      "V", {ast::Expr::MakeBin(runtime::BinOp::kSub, ast::Expr::MakeVar("i"),
                               ast::Expr::MakeInt(1))});
  auto w = ast::LValue::MakeIndex("W", {ast::Expr::MakeVar("i")});
  EXPECT_TRUE(Overlap(v1, v2));
  EXPECT_FALSE(Overlap(v1, w));
  // Projections overlap through their base.
  auto proj = ast::LValue::MakeProj(v1, "K");
  EXPECT_TRUE(Overlap(proj, v2));
}

TEST(LValueEquals, Structural) {
  ast::Program p = MustParse(
      "for i = 0, 9 do { V[i] := 0.0; V[i] += 1.0; V[i+1] += 1.0; }");
  auto accesses = CollectAccesses(*p.stmts[0]);
  ASSERT_EQ(accesses.size(), 3u);
  EXPECT_TRUE(LValueEquals(accesses[0].writers[0],
                           accesses[1].aggregators[0]));
  EXPECT_FALSE(LValueEquals(accesses[0].writers[0],
                            accesses[2].aggregators[0]));
}

TEST(Affine, Expressions) {
  std::set<std::string> idx = {"i", "j"};
  auto expr = [](const std::string& s) {
    auto e = parser::ParseExpr(s);
    EXPECT_TRUE(e.ok());
    return *e;
  };
  EXPECT_TRUE(IsAffineExpr(expr("i"), idx));
  EXPECT_TRUE(IsAffineExpr(expr("i + 1"), idx));
  EXPECT_TRUE(IsAffineExpr(expr("2*i + 3*j - 4"), idx));
  EXPECT_TRUE(IsAffineExpr(expr("n"), idx));        // loop constant
  EXPECT_TRUE(IsAffineExpr(expr("n*m + 7"), idx));  // constant expression
  EXPECT_TRUE(IsAffineExpr(expr("n*i"), idx));      // constant coefficient
  EXPECT_FALSE(IsAffineExpr(expr("i*j"), idx));
  EXPECT_FALSE(IsAffineExpr(expr("i/2"), idx));
  EXPECT_FALSE(IsAffineExpr(expr("V[i]"), idx));
}

TEST(Affine, Destinations) {
  auto parse_dest = [](const std::string& s) {
    auto p = parser::ParseProgram(s + " := 0;");
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return p->stmts[0]->as<ast::Stmt::Assign>().dest;
  };
  // affine(d, s) requires covering all loop indexes of the context.
  EXPECT_TRUE(IsAffineDest(parse_dest("V[i]"), {"i"}));
  EXPECT_TRUE(IsAffineDest(parse_dest("M[i,j]"), {"i", "j"}));
  EXPECT_TRUE(IsAffineDest(parse_dest("M[i+1,j-2]"), {"i", "j"}));
  EXPECT_FALSE(IsAffineDest(parse_dest("V[i]"), {"i", "j"}));  // j missing
  EXPECT_FALSE(IsAffineDest(parse_dest("V[W[i]]"), {"i"}));    // not affine
  EXPECT_FALSE(IsAffineDest(parse_dest("n"), {"i"}));  // scalar in a loop
  EXPECT_TRUE(IsAffineDest(parse_dest("n"), {}));      // scalar outside
  // Projections check their base: closest[i]._2 is affine in {i}.
  EXPECT_TRUE(IsAffineDest(parse_dest("closest[i]._2"), {"i"}));
}

TEST(Indexes, OfDestination) {
  auto p = MustParse("for i = 0, 9 do for j = 0, 9 do M[i,j] += V[k];");
  auto accesses = CollectAccesses(*p.stmts[0]);
  std::set<std::string> loop_indexes = {"i", "j"};
  EXPECT_EQ(IndexesOf(accesses[0].aggregators[0], loop_indexes),
            (std::set<std::string>{"i", "j"}));
  // V[k] uses no loop indexes.
  for (const auto& r : accesses[0].readers) {
    if (r->ToString() == "V[k]") {
      EXPECT_TRUE(IndexesOf(r, loop_indexes).empty());
    }
  }
}

}  // namespace
}  // namespace diablo::analysis
