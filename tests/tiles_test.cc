// Unit and property tests for tiled (packed) matrices — paper §5:
// pack/unpack round trips, the shuffle-free zip merge, and tiled matrix
// multiplication against the sparse reference.

#include "tiles/tiles.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "runtime/array.h"
#include "runtime/operators.h"

namespace diablo::tiles {
namespace {

using runtime::Dataset;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;

ValueVec DenseMatrixRows(int64_t n, int64_t m, std::mt19937_64& rng) {
  ValueVec rows;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      rows.push_back(Value::MakePair(
          runtime::MatrixKey(i, j),
          Value::MakeDouble(static_cast<double>(rng() % 100) / 7)));
    }
  }
  return rows;
}

Value SortedBag(Engine& engine, const Dataset& ds) {
  ValueVec rows = engine.Collect(ds).value();
  std::sort(rows.begin(), rows.end());
  return Value::MakeBag(std::move(rows));
}

struct TileParams {
  int64_t n, m;
  int64_t tr, tc;
};

class PackUnpackTest : public ::testing::TestWithParam<TileParams> {};

TEST_P(PackUnpackTest, UnpackOfPackIsIdentityOnDenseMatrices) {
  const TileParams& p = GetParam();
  Engine engine;
  std::mt19937_64 rng(p.n * 31 + p.tr);
  ValueVec rows = DenseMatrixRows(p.n, p.m, rng);
  Dataset sparse = engine.Parallelize(rows);
  TileConfig config{p.tr, p.tc};
  auto tiled = Pack(engine, sparse, config);
  ASSERT_TRUE(tiled.ok()) << tiled.status().ToString();
  auto back = Unpack(engine, *tiled, config);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Unpack emits every tile slot; restrict to the original support when
  // dimensions don't divide evenly.
  std::map<Value, Value> original;
  for (const Value& row : rows) {
    original.emplace(row.tuple()[0], row.tuple()[1]);
  }
  int64_t in_support = 0;
  const ValueVec back_rows = engine.Collect(*back).value();
  for (const Value& row : back_rows) {
    auto it = original.find(row.tuple()[0]);
    if (it == original.end()) {
      // Padding slot must be zero.
      EXPECT_DOUBLE_EQ(row.tuple()[1].ToDouble(), 0.0);
      continue;
    }
    ++in_support;
    EXPECT_DOUBLE_EQ(row.tuple()[1].ToDouble(), it->second.ToDouble());
  }
  EXPECT_EQ(in_support, static_cast<int64_t>(rows.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackUnpackTest,
    ::testing::Values(TileParams{8, 8, 4, 4}, TileParams{8, 8, 3, 3},
                      TileParams{5, 7, 2, 3}, TileParams{16, 4, 4, 2},
                      TileParams{1, 1, 4, 4}),
    [](const ::testing::TestParamInfo<TileParams>& info) {
      return "n" + std::to_string(info.param.n) + "m" +
             std::to_string(info.param.m) + "t" +
             std::to_string(info.param.tr) + "x" +
             std::to_string(info.param.tc);
    });

TEST(Pack, TileCountAndShape) {
  Engine engine;
  std::mt19937_64 rng(1);
  Dataset sparse = engine.Parallelize(DenseMatrixRows(8, 8, rng));
  TileConfig config{4, 4};
  auto tiled = Pack(engine, sparse, config);
  ASSERT_TRUE(tiled.ok());
  EXPECT_EQ(tiled->TotalRows(), 4);  // 2x2 tile grid
  const ValueVec tile_rows = engine.Collect(*tiled).value();
  for (const Value& row : tile_rows) {
    EXPECT_EQ(row.tuple()[1].bag().size(), 16u);
  }
}

TEST(ZipMerge, AgreesWithCoGroupMerge) {
  Engine engine;
  std::mt19937_64 rng(7);
  TileConfig config{4, 4};
  auto a = Pack(engine, engine.Parallelize(DenseMatrixRows(8, 8, rng)),
                config);
  auto b = Pack(engine, engine.Parallelize(DenseMatrixRows(8, 8, rng)),
                config);
  ASSERT_TRUE(a.ok() && b.ok());
  auto zipped = ZipMergeAdd(engine, *a, *b);
  ASSERT_TRUE(zipped.ok()) << zipped.status().ToString();
  auto cogrouped = CoGroupMergeAdd(engine, *a, *b);
  ASSERT_TRUE(cogrouped.ok());
  EXPECT_TRUE(runtime::BagAlmostEquals(SortedBag(engine, *zipped),
                                       SortedBag(engine, *cogrouped), 1e-9));
}

TEST(ZipMerge, NoShuffleChargedVsCoGroup) {
  Engine engine;
  std::mt19937_64 rng(3);
  TileConfig config{4, 4};
  auto a = Pack(engine, engine.Parallelize(DenseMatrixRows(12, 12, rng)),
                config);
  auto b = Pack(engine, engine.Parallelize(DenseMatrixRows(12, 12, rng)),
                config);
  ASSERT_TRUE(a.ok() && b.ok());
  engine.metrics().Clear();
  ASSERT_TRUE(ZipMergeAdd(engine, *a, *b).ok());
  EXPECT_EQ(engine.metrics().total_shuffle_bytes(), 0);
  EXPECT_EQ(engine.metrics().num_wide_stages(), 0);
  engine.metrics().Clear();
  ASSERT_TRUE(CoGroupMergeAdd(engine, *a, *b).ok());
  EXPECT_GT(engine.metrics().total_shuffle_bytes(), 0);
}

TEST(PartitionByKey, CoPartitionsEqualKeys) {
  Engine engine;
  ValueVec a_rows, b_rows;
  for (int64_t i = 0; i < 40; ++i) {
    a_rows.push_back(Value::MakePair(Value::MakeInt(i),
                                     Value::MakeDouble(i * 1.0)));
    b_rows.push_back(Value::MakePair(Value::MakeInt(39 - i),
                                     Value::MakeDouble(i * 2.0)));
  }
  auto a = PartitionByKey(engine, engine.Parallelize(a_rows));
  auto b = PartitionByKey(engine, engine.Parallelize(b_rows));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_partitions(), b->num_partitions());
  // Every key must live in the same partition index on both sides.
  std::map<Value, int> where;
  for (int p = 0; p < a->num_partitions(); ++p) {
    for (const Value& row : a->partition(p)) {
      where[row.tuple()[0]] = p;
    }
  }
  for (int p = 0; p < b->num_partitions(); ++p) {
    for (const Value& row : b->partition(p)) {
      auto it = where.find(row.tuple()[0]);
      ASSERT_NE(it, where.end());
      EXPECT_EQ(it->second, p) << row.ToString();
    }
  }
}

TEST(ZipMerge, DisjointTilesPassThrough) {
  Engine engine;
  TileConfig config{2, 2};
  std::mt19937_64 rng(9);
  // a covers rows 0..1, b covers rows 2..3: disjoint tile grids.
  ValueVec a_rows, b_rows;
  for (int64_t j = 0; j < 4; ++j) {
    a_rows.push_back(Value::MakePair(runtime::MatrixKey(0, j),
                                     Value::MakeDouble(1)));
    b_rows.push_back(Value::MakePair(runtime::MatrixKey(3, j),
                                     Value::MakeDouble(2)));
  }
  auto a = Pack(engine, engine.Parallelize(a_rows), config);
  auto b = Pack(engine, engine.Parallelize(b_rows), config);
  ASSERT_TRUE(a.ok() && b.ok());
  auto merged = ZipMergeAdd(engine, *a, *b);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->TotalRows(), a->TotalRows() + b->TotalRows());
}

TEST(TiledMatMul, AgreesWithDenseReference) {
  Engine engine;
  std::mt19937_64 rng(11);
  constexpr int64_t kN = 8;
  ValueVec a_rows = DenseMatrixRows(kN, kN, rng);
  ValueVec b_rows = DenseMatrixRows(kN, kN, rng);
  TileConfig config{4, 4};
  auto a = Pack(engine, engine.Parallelize(a_rows), config);
  auto b = Pack(engine, engine.Parallelize(b_rows), config);
  ASSERT_TRUE(a.ok() && b.ok());
  auto product = TiledMatMul(engine, *a, *b, config);
  ASSERT_TRUE(product.ok()) << product.status().ToString();
  auto result = Unpack(engine, *product, config);
  ASSERT_TRUE(result.ok());
  // Dense reference multiply.
  std::map<Value, double> av, bv;
  for (const Value& r : a_rows) av[r.tuple()[0]] = r.tuple()[1].ToDouble();
  for (const Value& r : b_rows) bv[r.tuple()[0]] = r.tuple()[1].ToDouble();
  std::map<Value, double> expected;
  for (int64_t i = 0; i < kN; ++i) {
    for (int64_t j = 0; j < kN; ++j) {
      double sum = 0;
      for (int64_t k = 0; k < kN; ++k) {
        sum += av[runtime::MatrixKey(i, k)] * bv[runtime::MatrixKey(k, j)];
      }
      expected[runtime::MatrixKey(i, j)] = sum;
    }
  }
  int64_t checked = 0;
  const ValueVec result_rows = engine.Collect(*result).value();
  for (const Value& row : result_rows) {
    auto it = expected.find(row.tuple()[0]);
    ASSERT_NE(it, expected.end()) << row.ToString();
    EXPECT_NEAR(row.tuple()[1].ToDouble(), it->second, 1e-9);
    ++checked;
  }
  EXPECT_EQ(checked, kN * kN);
}

TEST(TiledMatMul, RejectsNonSquareTiles) {
  Engine engine;
  EXPECT_FALSE(
      TiledMatMul(engine, Dataset(), Dataset(), TileConfig{2, 3}).ok());
}

TEST(Pack, RejectsNegativeIndices) {
  Engine engine;
  Dataset bad = engine.Parallelize({Value::MakePair(
      runtime::MatrixKey(-1, 0), Value::MakeDouble(1))});
  EXPECT_FALSE(Pack(engine, bad, TileConfig{4, 4}).ok());
}

}  // namespace
}  // namespace diablo::tiles
