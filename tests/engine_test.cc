// Unit and property tests for the distributed engine: every operator is
// checked against a naive std:: reference, across partition counts and
// host thread counts (parameterized sweeps).

#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "runtime/operators.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }

ValueVec SortedRows(Engine& engine, const Dataset& ds) {
  ValueVec rows = engine.Collect(ds).value();
  std::sort(rows.begin(), rows.end());
  return rows;
}

ValueVec KeyedRows(int n, int keys) {
  ValueVec rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(I(i % keys), I(i)));
  }
  return rows;
}

struct EngineParams {
  int partitions;
  int threads;
};

class EngineParamTest : public ::testing::TestWithParam<EngineParams> {
 protected:
  Engine MakeEngine() {
    EngineConfig config;
    config.num_partitions = GetParam().partitions;
    config.host_threads = GetParam().threads;
    return Engine(config);
  }
};

TEST_P(EngineParamTest, ParallelizePreservesRows) {
  Engine engine = MakeEngine();
  ValueVec rows;
  for (int i = 0; i < 37; ++i) rows.push_back(I(i));
  Dataset ds = engine.Parallelize(rows);
  EXPECT_EQ(ds.num_partitions(), GetParam().partitions);
  EXPECT_EQ(ds.TotalRows(), 37);
  ValueVec collected = engine.Collect(ds).value();
  // Contiguous chunking preserves order.
  EXPECT_EQ(collected, rows);
}

TEST_P(EngineParamTest, RangeInclusive) {
  Engine engine = MakeEngine();
  Dataset ds = engine.Range(3, 7);
  ValueVec rows = engine.Collect(ds).value();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows.front().AsInt(), 3);
  EXPECT_EQ(rows.back().AsInt(), 7);
  EXPECT_EQ(engine.Range(5, 4).TotalRows(), 0);
}

TEST_P(EngineParamTest, MapFilterFlatMap) {
  Engine engine = MakeEngine();
  Dataset ds = engine.Range(0, 99);
  auto doubled = engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
    return I(v.AsInt() * 2);
  });
  ASSERT_TRUE(doubled.ok());
  auto even = engine.Filter(*doubled, [](const Value& v) -> StatusOr<bool> {
    return v.AsInt() % 4 == 0;
  });
  ASSERT_TRUE(even.ok());
  // Narrow operators are lazy: count through the engine, which forces
  // the fused chain, rather than reading source-row totals.
  EXPECT_EQ(engine.Count(*even).value(), 50);
  auto expanded =
      engine.FlatMap(*even, [](const Value& v) -> StatusOr<ValueVec> {
        return ValueVec{v, v};
      });
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(engine.Count(*expanded).value(), 100);
}

TEST_P(EngineParamTest, MapErrorPropagates) {
  Engine engine = MakeEngine();
  Dataset ds = engine.Range(0, 9);
  auto result = engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
    if (v.AsInt() == 7) return Status::RuntimeError("boom");
    return v;
  });
  // The map itself is deferred; the user error surfaces when the fused
  // chain runs at the next action.
  ASSERT_TRUE(result.ok());
  auto forced = engine.Collect(*result);
  ASSERT_FALSE(forced.ok());
  EXPECT_EQ(forced.status().message(), "boom");
}

TEST_P(EngineParamTest, GroupByKeyMatchesReference) {
  Engine engine = MakeEngine();
  Dataset ds = engine.Parallelize(KeyedRows(100, 7));
  auto grouped = engine.GroupByKey(ds);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  std::map<int64_t, std::multiset<int64_t>> expected;
  for (int i = 0; i < 100; ++i) expected[i % 7].insert(i);
  ValueVec rows = SortedRows(engine, *grouped);
  ASSERT_EQ(rows.size(), expected.size());
  for (const Value& row : rows) {
    std::multiset<int64_t> got;
    for (const Value& v : row.tuple()[1].bag()) got.insert(v.AsInt());
    EXPECT_EQ(got, expected[row.tuple()[0].AsInt()]);
  }
}

TEST_P(EngineParamTest, ReduceByKeyMatchesGroupThenFold) {
  Engine engine = MakeEngine();
  Dataset ds = engine.Parallelize(KeyedRows(123, 10));
  auto reduced = engine.ReduceByKey(ds, BinOp::kAdd);
  ASSERT_TRUE(reduced.ok());
  std::map<int64_t, int64_t> expected;
  for (int i = 0; i < 123; ++i) expected[i % 10] += i;
  ValueVec rows = SortedRows(engine, *reduced);
  ASSERT_EQ(rows.size(), expected.size());
  for (const Value& row : rows) {
    EXPECT_EQ(row.tuple()[1].AsInt(), expected[row.tuple()[0].AsInt()]);
  }
}

TEST_P(EngineParamTest, JoinMatchesNestedLoopReference) {
  Engine engine = MakeEngine();
  ValueVec left, right;
  for (int i = 0; i < 20; ++i) {
    left.push_back(Value::MakePair(I(i % 6), I(i)));
  }
  for (int i = 0; i < 15; ++i) {
    right.push_back(Value::MakePair(I(i % 9), I(100 + i)));
  }
  auto joined = engine.Join(engine.Parallelize(left),
                            engine.Parallelize(right));
  ASSERT_TRUE(joined.ok());
  // Naive reference.
  ValueVec expected;
  for (const Value& l : left) {
    for (const Value& r : right) {
      if (l.tuple()[0] == r.tuple()[0]) {
        expected.push_back(Value::MakePair(
            l.tuple()[0], Value::MakePair(l.tuple()[1], r.tuple()[1])));
      }
    }
  }
  ValueVec got = engine.Collect(*joined).value();
  EXPECT_TRUE(BagEquals(Value::MakeBag(got), Value::MakeBag(expected)));
}

TEST_P(EngineParamTest, CoGroupCoversBothSides) {
  Engine engine = MakeEngine();
  ValueVec left = {Value::MakePair(I(1), I(10)),
                   Value::MakePair(I(2), I(20))};
  ValueVec right = {Value::MakePair(I(2), I(200)),
                    Value::MakePair(I(3), I(300))};
  auto grouped = engine.CoGroup(engine.Parallelize(left),
                                engine.Parallelize(right));
  ASSERT_TRUE(grouped.ok());
  ValueVec rows = SortedRows(engine, *grouped);
  ASSERT_EQ(rows.size(), 3u);  // keys 1, 2, 3
  for (const Value& row : rows) {
    int64_t key = row.tuple()[0].AsInt();
    size_t nl = row.tuple()[1].tuple()[0].bag().size();
    size_t nr = row.tuple()[1].tuple()[1].bag().size();
    if (key == 1) EXPECT_TRUE(nl == 1 && nr == 0);
    if (key == 2) EXPECT_TRUE(nl == 1 && nr == 1);
    if (key == 3) EXPECT_TRUE(nl == 0 && nr == 1);
  }
}

TEST_P(EngineParamTest, UnionConcatenates) {
  Engine engine = MakeEngine();
  Dataset a = engine.Range(0, 4);
  Dataset b = engine.Range(5, 9);
  auto u = engine.Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->TotalRows(), 10);
}

TEST_P(EngineParamTest, DistinctRemovesDuplicates) {
  Engine engine = MakeEngine();
  ValueVec rows;
  for (int i = 0; i < 30; ++i) rows.push_back(I(i % 5));
  auto d = engine.Distinct(engine.Parallelize(rows));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->TotalRows(), 5);
}

TEST_P(EngineParamTest, ReduceTotalAndEmpty) {
  Engine engine = MakeEngine();
  auto sum = engine.Reduce(engine.Range(1, 100),
                           [](const Value& a, const Value& b) {
                             return EvalBinOp(BinOp::kAdd, a, b);
                           });
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(sum->has_value());
  EXPECT_EQ((*sum)->AsInt(), 5050);
  auto empty = engine.Reduce(engine.Parallelize({}),
                             [](const Value& a, const Value& b) {
                               return EvalBinOp(BinOp::kAdd, a, b);
                             });
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
}

TEST_P(EngineParamTest, FirstAndCount) {
  Engine engine = MakeEngine();
  Dataset ds = engine.Range(7, 20);
  auto first = engine.First(ds);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsInt(), 7);
  EXPECT_EQ(engine.Count(ds).value(), 14);
  EXPECT_FALSE(engine.First(engine.Parallelize({})).ok());
}

TEST_P(EngineParamTest, WideOpsRecordShuffleBytes) {
  Engine engine = MakeEngine();
  Dataset ds = engine.Parallelize(KeyedRows(50, 5));
  engine.metrics().Clear();
  ASSERT_TRUE(engine.GroupByKey(ds).ok());
  EXPECT_EQ(engine.metrics().num_wide_stages(), 1);
  EXPECT_GT(engine.metrics().total_shuffle_bytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineParamTest,
    ::testing::Values(EngineParams{1, 1}, EngineParams{4, 1},
                      EngineParams{8, 1}, EngineParams{3, 1},
                      EngineParams{8, 2}, EngineParams{16, 4}),
    [](const ::testing::TestParamInfo<EngineParams>& info) {
      return "p" + std::to_string(info.param.partitions) + "t" +
             std::to_string(info.param.threads);
    });

// Stress: a pipeline mixing wide and narrow operators under real host
// parallelism must produce exactly the single-threaded result, collected
// order included — threading is a host execution detail, never a
// semantic one.
TEST(Engine, StressThreadedPipelineMatchesSingleThreaded) {
  ValueVec rows = KeyedRows(5000, 37);
  auto run = [&](int threads) -> ValueVec {
    EngineConfig config;
    config.num_partitions = 16;
    config.host_threads = threads;
    Engine engine(config);
    Dataset ds = engine.Parallelize(rows);
    auto scaled = engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
      return Value::MakePair(v.tuple()[0], I(v.tuple()[1].AsInt() * 3 + 1));
    });
    EXPECT_TRUE(scaled.ok());
    auto odd = engine.Filter(*scaled, [](const Value& v) -> StatusOr<bool> {
      return v.tuple()[1].AsInt() % 2 == 1;
    });
    EXPECT_TRUE(odd.ok());
    auto sums = engine.ReduceByKey(*odd, BinOp::kAdd);
    EXPECT_TRUE(sums.ok());
    auto grouped = engine.GroupByKey(*odd);
    EXPECT_TRUE(grouped.ok());
    auto sizes =
        engine.FlatMap(*grouped, [](const Value& row) -> StatusOr<ValueVec> {
          return ValueVec{Value::MakePair(
              row.tuple()[0],
              I(static_cast<int64_t>(row.tuple()[1].bag().size())))};
        });
    EXPECT_TRUE(sizes.ok());
    auto joined = engine.Join(*sums, *sizes);
    EXPECT_TRUE(joined.ok());
    auto deduped = engine.Distinct(*joined);
    EXPECT_TRUE(deduped.ok());
    return engine.Collect(*deduped).value();
  };
  ValueVec single = run(1);
  ValueVec threaded = run(8);
  EXPECT_EQ(threaded, single);
}

// Results must be identical across partitionings (the fundamental
// distribution-invariance property).
TEST(Engine, ResultsInvariantAcrossPartitioning) {
  ValueVec rows = KeyedRows(200, 13);
  ValueVec baseline;
  for (int parts : {1, 2, 5, 16, 64}) {
    EngineConfig config;
    config.num_partitions = parts;
    Engine engine(config);
    auto reduced = engine.ReduceByKey(engine.Parallelize(rows), BinOp::kAdd);
    ASSERT_TRUE(reduced.ok());
    ValueVec got = SortedRows(engine, *reduced);
    if (baseline.empty()) {
      baseline = got;
    } else {
      EXPECT_EQ(got, baseline) << parts << " partitions";
    }
  }
}

}  // namespace
}  // namespace diablo::runtime
