// Tests for the public facade (diablo/diablo.h): compile/run round
// trips, error propagation from every pipeline stage, and option
// handling.

#include "diablo/diablo.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace diablo {
namespace {

using testing::Bag;
using testing::DoubleVector;
using testing::DV;
using testing::IV;
using testing::Pair;

TEST(Facade, CompileAndRunRoundTrip) {
  runtime::Engine engine;
  auto run = CompileAndRun(R"(
    var s: double = 0.0;
    for v in V do s += v;
  )",
                           &engine, {{"V", DoubleVector({1, 2, 3})}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_DOUBLE_EQ(run->Scalar("s")->ToDouble(), 6.0);
}

TEST(Facade, ParseErrorsSurface) {
  auto compiled = Compile("for i = 0 do x += 1;");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kParseError);
}

TEST(Facade, RestrictionErrorsSurface) {
  auto compiled = Compile("for i = 1, 8 do V[i] := V[i-1];");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kRestrictionViolation);
}

TEST(Facade, RestrictionCheckCanBeDisabled) {
  CompileOptions options;
  options.check_restrictions = false;
  // The program violates Definition 3.1 but still translates; the
  // result is then simply not guaranteed to match the sequential
  // semantics (this is the paper's "unsafe mode" for experimentation).
  auto compiled = Compile("for i = 1, 8 do V[i] := V[i-1];", options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
}

TEST(Facade, UnsupportedConstructsSurface) {
  auto compiled = Compile("for v in V do { while (v > 0.0) x += 1; }");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kRestrictionViolation);
}

TEST(Facade, RuntimeErrorsSurface) {
  runtime::Engine engine;
  // Unbound scalar read at runtime.
  auto run = CompileAndRun("x := y + 1;", &engine, {});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kRuntimeError);
}

TEST(Facade, RunRequiresEngine) {
  auto compiled = Compile("var x: int = 1;");
  ASSERT_TRUE(compiled.ok());
  auto run = ::diablo::Run(*compiled, nullptr, {});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(Facade, MalformedInputArrayRejected) {
  runtime::Engine engine;
  auto compiled = Compile("var s: double = 0.0; for v in V do s += v;");
  ASSERT_TRUE(compiled.ok());
  auto run = ::diablo::Run(*compiled, &engine, {{"V", Bag({IV(3)})}});  // not pairs
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(Facade, TargetCodeIsPrintable) {
  auto compiled = Compile("for i = 0, 9 do V[i] := W[i];");
  ASSERT_TRUE(compiled.ok());
  std::string target = compiled->TargetToString();
  EXPECT_NE(target.find("V := V <|"), std::string::npos) << target;
}

TEST(Facade, VarTableExposed) {
  auto compiled = Compile(R"(
    var s: double = 0.0;
    for v in V do s += v;
  )");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->vars.at("V").is_array);
  EXPECT_FALSE(compiled->vars.at("s").is_array);
  EXPECT_TRUE(compiled->vars.at("s").declared);
}

TEST(Facade, ArrayDatasetAccessWithoutCollect) {
  runtime::Engine engine;
  auto run = CompileAndRun(R"(
    var C: map[int,int] = map();
    for v in V do C[1] += 1;
  )",
                           &engine, {{"V", DoubleVector({1, 2, 3})}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto ds = run->ArrayDataset("C");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->TotalRows(), 1);
}

TEST(Facade, ReferenceRunner) {
  auto ref = RunReference(R"(
    var n: int = 0;
    while (n < 3) n += 1;
  )", {});
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ((*ref)->GetScalar("n")->AsInt(), 3);
}

TEST(Facade, CompiledProgramIsReusableAcrossRunsAndEngines) {
  auto compiled = Compile(R"(
    var s: double = 0.0;
    for v in V do s += v;
  )");
  ASSERT_TRUE(compiled.ok());
  for (double base : {1.0, 10.0}) {
    runtime::Engine engine;
    auto run = ::diablo::Run(*compiled, &engine,
                   {{"V", DoubleVector({base, base + 1})}});
    ASSERT_TRUE(run.ok());
    EXPECT_DOUBLE_EQ(run->Scalar("s")->ToDouble(), 2 * base + 1);
  }
}

TEST(Facade, ScalarOutputsKeepKinds) {
  runtime::Engine engine;
  auto run = CompileAndRun(R"(
    var i: int = 2;
    var d: double = 0.5;
    var b: bool = false;
    i := i * 3;
    d := d + 1.0;
    b := i == 6;
  )",
                           &engine, {});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->Scalar("i")->is_int());
  EXPECT_TRUE(run->Scalar("d")->is_double());
  EXPECT_TRUE(run->Scalar("b")->is_bool());
  EXPECT_TRUE(run->Scalar("b")->AsBool());
}

}  // namespace
}  // namespace diablo
