// diablo_lint's two analysis levels: loop-level diagnostics with race
// witnesses (golden codes, witness confirmation against the reference
// interpreter, JSON schema stability) and plan-level shuffle lints
// (advisories P101-P105, and wide-stage totals validated against the
// metrics of real engine runs).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/diagnostics.h"
#include "analysis/loop_lint.h"
#include "analysis/plan_lint.h"
#include "analysis/restrictions.h"
#include "diablo/diablo.h"
#include "parser/parser.h"
#include "workloads/programs.h"

namespace diablo::analysis {
namespace {

using runtime::BinOp;
using runtime::Value;

std::vector<Diagnostic> Lint(const std::string& src) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return LintLoops(CanonicalizeIncrements(*p));
}

const Diagnostic* FindCode(const std::vector<Diagnostic>& diags,
                           const std::string& code,
                           const std::string& message_fragment = "") {
  for (const Diagnostic& d : diags) {
    if (d.code != code) continue;
    if (!message_fragment.empty() &&
        d.message.find(message_fragment) == std::string::npos) {
      continue;
    }
    return &d;
  }
  return nullptr;
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  return FindCode(diags, code) != nullptr;
}

constexpr const char kStencil[] = R"(
for i = 1, 8 do
  V[i] := (V[i-1] + V[i+1]) / 2.0;
)";

constexpr const char kNonAffineWrite[] = R"(
for i = 0, 4 do
  A[i*i - 2*i] := V[i] * 2.0;
)";

constexpr const char kBubbleSort[] = R"(
var t: double = 0.0;
for i = 0, 6 do {
  t := V[i];
  V[i] := V[i+1];
  V[i+1] := t;
}
)";

/// Evaluates an integer index expression with the reference interpreter,
/// binding the witness iteration's loop indexes as scalar inputs. This
/// is the ground-truth check that a reported witness really makes both
/// subscripts collide.
int64_t RefEval(const std::string& expr,
                const std::vector<std::pair<std::string, int64_t>>& env) {
  auto p = parser::ParseProgram("var out: int = " + expr + ";");
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  exec::ReferenceInterpreter interp;
  exec::ReferenceInterpreter::Bindings inputs;
  for (const auto& [var, val] : env) inputs[var] = Value::MakeInt(val);
  Status st = interp.Run(*p, inputs);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto out = interp.GetScalar("out");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out->AsInt();
}

// ------------------------- loop-level witnesses ----------------------------

TEST(LoopLint, StencilReportsWriteReadWitness) {
  std::vector<Diagnostic> diags = Lint(kStencil);
  EXPECT_TRUE(HasErrors(diags));
  // The paper's example race: the write at i=1 and the read of V[i-1]
  // at i'=2 both touch V[1].
  const Diagnostic* d = FindCode(diags, diag::kWriteReadRecurrence, "i - 1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ASSERT_TRUE(d->witness.has_value());
  const Witness& w = *d->witness;
  EXPECT_EQ(w.array, "V");
  ASSERT_EQ(w.write_iteration.size(), 1u);
  EXPECT_EQ(w.write_iteration[0].first, "i");
  EXPECT_EQ(w.write_iteration[0].second, 1);
  ASSERT_EQ(w.read_iteration.size(), 1u);
  EXPECT_EQ(w.read_iteration[0].second, 2);
  ASSERT_EQ(w.element.size(), 1u);
  EXPECT_EQ(w.element[0], 1);
  EXPECT_FALSE(w.conflict_is_write);
  EXPECT_EQ(w.ToString(), "write at i=1 and read at i=2 both touch V[1]");
}

TEST(LoopLint, StencilWitnessConfirmedByReferenceInterpreter) {
  std::vector<Diagnostic> diags = Lint(kStencil);
  const Diagnostic* d = FindCode(diags, diag::kWriteReadRecurrence, "i - 1");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->witness.has_value());
  // Written destination is V[i] under the write iteration, read
  // destination is V[i-1] under the read iteration; both must evaluate
  // to the witness element.
  int64_t write_elem = RefEval("i", d->witness->write_iteration);
  int64_t read_elem = RefEval("i - 1", d->witness->read_iteration);
  EXPECT_EQ(write_elem, d->witness->element[0]);
  EXPECT_EQ(read_elem, d->witness->element[0]);
  // And the two iterations are genuinely distinct.
  EXPECT_NE(d->witness->write_iteration[0].second,
            d->witness->read_iteration[0].second);
}

TEST(LoopLint, NonAffineWriteReportsSelfConflictWitness) {
  std::vector<Diagnostic> diags = Lint(kNonAffineWrite);
  const Diagnostic* d = FindCode(diags, diag::kNonAffineDest);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ASSERT_TRUE(d->witness.has_value());
  const Witness& w = *d->witness;
  EXPECT_TRUE(w.conflict_is_write);
  EXPECT_EQ(w.array, "A");
  // i=0 and i=2 both write A[0].
  ASSERT_EQ(w.write_iteration.size(), 1u);
  ASSERT_EQ(w.read_iteration.size(), 1u);
  EXPECT_EQ(w.write_iteration[0].second, 0);
  EXPECT_EQ(w.read_iteration[0].second, 2);
  ASSERT_EQ(w.element.size(), 1u);
  EXPECT_EQ(w.element[0], 0);
  // Confirm with the reference interpreter: the quadratic subscript
  // really collides at the two witness iterations.
  EXPECT_EQ(RefEval("i*i - 2*i", w.write_iteration), w.element[0]);
  EXPECT_EQ(RefEval("i*i - 2*i", w.read_iteration), w.element[0]);
}

TEST(LoopLint, BubbleSortReportsRecurrenceAndScalarDest) {
  std::vector<Diagnostic> diags = Lint(kBubbleSort);
  EXPECT_TRUE(HasErrors(diags));
  // The swap's loop-carried read of V[i+1] gets a concrete witness.
  const Diagnostic* swap =
      FindCode(diags, diag::kWriteReadRecurrence, "V[(i + 1)] is read but V[i]");
  ASSERT_NE(swap, nullptr);
  ASSERT_TRUE(swap->witness.has_value());
  EXPECT_EQ(RefEval("i", swap->witness->write_iteration),
            RefEval("i + 1", swap->witness->read_iteration));
  // The scalar temporary misses the loop index entirely (D004): every
  // iteration writes the same location.
  const Diagnostic* scalar = FindCode(diags, diag::kDestMissesIndexes);
  ASSERT_NE(scalar, nullptr);
  ASSERT_TRUE(scalar->witness.has_value());
  EXPECT_TRUE(scalar->witness->conflict_is_write);
  EXPECT_EQ(scalar->witness->ElementString(), "t");
}

TEST(LoopLint, GcdFilterSuppressesWitnessForDisjointLattices) {
  // 2i and 2i'+1 never collide (parity): the recurrence is still flagged
  // conservatively (name overlap), but no witness can exist.
  std::vector<Diagnostic> diags = Lint(R"(
    for i = 0, 9 do
      V[2*i] := V[2*i + 1] * 0.5;
  )");
  const Diagnostic* d = FindCode(diags, diag::kWriteReadRecurrence);
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->witness.has_value());
}

TEST(LoopLint, TwoDimensionalWitness) {
  std::vector<Diagnostic> diags = Lint(R"(
    for i = 0, 4 do
      for j = 0, 4 do
        M[i,j] := M[j,i] + 1.0;
  )");
  const Diagnostic* d = FindCode(diags, diag::kWriteReadRecurrence);
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->witness.has_value());
  const Witness& w = *d->witness;
  ASSERT_EQ(w.write_iteration.size(), 2u);
  ASSERT_EQ(w.read_iteration.size(), 2u);
  ASSERT_EQ(w.element.size(), 2u);
  // write M[i,j] at (i,j), read M[j',i'] at (i',j'): same element.
  EXPECT_EQ(w.write_iteration[0].second, w.element[0]);
  EXPECT_EQ(w.write_iteration[1].second, w.element[1]);
  EXPECT_EQ(w.read_iteration[1].second, w.element[0]);
  EXPECT_EQ(w.read_iteration[0].second, w.element[1]);
}

// ------------------------- structural and advisory lints -------------------

TEST(LoopLint, StructuralCodes) {
  EXPECT_TRUE(HasCode(Lint("for i = 0, 3 do { var x: double = 0.0; "
                           "W[i] := x; }"),
                      diag::kDeclInLoop));
  EXPECT_TRUE(HasCode(Lint("for i = 0, 3 do for i = 0, 3 do "
                           "M[i,i] := 1.0;"),
                      diag::kDuplicateIndex));
  EXPECT_TRUE(HasCode(Lint("for v in V do while (v > 0.0) v := v - 1.0;"),
                      diag::kForInWhile));
}

TEST(LoopLint, ShadowedIndexWarning) {
  std::vector<Diagnostic> diags = Lint(R"(
    var i: int = 7;
    for i = 0, 3 do
      V[i] := W[i];
  )");
  const Diagnostic* d = FindCode(diags, diag::kShadowedIndex);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(HasErrors(diags));
}

TEST(LoopLint, NonCommutativeSelfUpdateWarning) {
  std::vector<Diagnostic> diags =
      Lint("for i = 0, 3 do V[i] := V[i] - W[i];");
  const Diagnostic* d = FindCode(diags, diag::kNonCommutativeUpdate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(LoopLint, NonAffineReadAdvisory) {
  std::vector<Diagnostic> diags =
      Lint("for i = 0, 3 do W[i] := V[i*i];");
  EXPECT_FALSE(HasErrors(diags));
  const Diagnostic* d = FindCode(diags, diag::kNonAffineRead);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(LoopLint, AcceptedBenchmarksHaveNoErrors) {
  for (const auto& spec : bench::BenchmarkPrograms()) {
    std::vector<Diagnostic> diags = Lint(spec.source);
    EXPECT_FALSE(HasErrors(diags))
        << spec.name << ":\n"
        << RenderTextAll(diags, spec.source, spec.name);
  }
}

// ------------------------- determinism and rendering -----------------------

TEST(LoopLint, ReportIsSortedAndDeterministic) {
  const std::string src = R"(
    for i = 0, 3 do
      V[i] := V[i+1];
    for j = 0, 3 do
      W[j] := W[j+1];
  )";
  std::vector<Diagnostic> first = Lint(src);
  std::vector<Diagnostic> second = Lint(src);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(RenderTextAll(first, src, "t"), RenderTextAll(second, src, "t"));
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].loc.line, first[i].loc.line);
  }
}

TEST(LoopLint, RestrictionReportMatchesErrorDiagnostics) {
  // The legacy checker is now a projection of the linter: same errors,
  // same order, same (deduplicated) count.
  auto p = parser::ParseProgram(kBubbleSort);
  ASSERT_TRUE(p.ok());
  ast::Program canon = CanonicalizeIncrements(*p);
  RestrictionReport report = CheckProgram(canon);
  EXPECT_FALSE(report.ok);
  std::vector<Diagnostic> diags = LintLoops(canon);
  EXPECT_EQ(report.violations.size(),
            static_cast<size_t>(CountSeverity(diags, Severity::kError)));
  size_t k = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity != Severity::kError) continue;
    EXPECT_EQ(report.violations[k].message, d.message);
    EXPECT_EQ(report.violations[k].loc.line, d.loc.line);
    ++k;
  }
}

TEST(Diagnostics, JsonSchemaIsStable) {
  Diagnostic d;
  d.code = diag::kWriteReadRecurrence;
  d.severity = Severity::kError;
  d.loc = {3, 5};
  d.message = "recurrence: \"x\"";
  d.hint = "copy first";
  Witness w;
  w.array = "V";
  w.write_iteration = {{"i", 1}};
  w.read_iteration = {{"i", 2}};
  w.element = {1};
  d.witness = w;
  EXPECT_EQ(RenderJson(d),
            "{\"code\":\"D001\",\"severity\":\"error\",\"line\":3,"
            "\"column\":5,\"message\":\"recurrence: \\\"x\\\"\","
            "\"hint\":\"copy first\",\"witness\":{\"array\":\"V\","
            "\"element\":[1],\"element_string\":\"V[1]\","
            "\"conflict\":\"read\",\"write\":{\"i\":1},"
            "\"read\":{\"i\":2}}}");
}

TEST(Diagnostics, JsonGoldenForStencil) {
  std::vector<Diagnostic> diags = Lint(kStencil);
  std::string json = RenderJsonAll(diags, "stencil.diablo");
  EXPECT_NE(json.find("\"file\":\"stencil.diablo\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"D001\""), std::string::npos);
  EXPECT_NE(json.find("\"write\":{\"i\":1},\"read\":{\"i\":2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"element\":[1]"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":2"), std::string::npos);
}

TEST(Diagnostics, TextRenderingHasCaretAndWitness) {
  std::vector<Diagnostic> diags = Lint(kStencil);
  std::string text = RenderTextAll(diags, kStencil, "stencil.diablo");
  EXPECT_NE(text.find("stencil.diablo:3:3: error: D001"), std::string::npos)
      << text;
  EXPECT_NE(text.find("  ^"), std::string::npos);
  EXPECT_NE(text.find("witness: write at i=1 and read at i=2 both touch "
                      "V[1]"),
            std::string::npos)
      << text;
}

// ------------------------- plan-level lints --------------------------------

PlanLintResult PlanLintSource(const std::string& src,
                              bool optimize = true) {
  CompileOptions options;
  options.enable_optimizer = optimize;
  auto compiled = Compile(src, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::set<std::string> array_vars;
  for (const auto& [name, info] : compiled->vars) {
    if (info.is_array) array_vars.insert(name);
  }
  return LintTargetProgram(compiled->target, array_vars);
}

TEST(PlanLint, WordCountTotalMatchesEngineRun) {
  const auto& spec = bench::GetProgram("word_count");
  PlanLintResult lint = PlanLintSource(spec.source);
  EXPECT_EQ(lint.total_wide_stages, 2);
  runtime::Engine engine;
  std::mt19937_64 rng(7);
  auto run = CompileAndRun(spec.source, &engine, spec.make_inputs(64, rng));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(lint.total_wide_stages, engine.metrics().num_wide_stages());
}

TEST(PlanLint, PageRankTotalMatchesEngineRun) {
  const auto& spec = bench::GetProgram("pagerank");
  PlanLintResult lint = PlanLintSource(spec.source);
  EXPECT_EQ(lint.total_wide_stages, 10);
  runtime::Engine engine;
  std::mt19937_64 rng(7);
  // make_inputs binds num_steps=1, so the while body runs exactly once —
  // the same convention the static count uses.
  auto run = CompileAndRun(spec.source, &engine, spec.make_inputs(3, rng));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(lint.total_wide_stages, engine.metrics().num_wide_stages());
}

TEST(PlanLint, EmitsPerStatementShuffleNotes) {
  PlanLintResult lint = PlanLintSource(
      "for w in words do C[w] += 1;");
  const Diagnostic* stmt = FindCode(lint.diagnostics, diag::kStmtShuffles);
  ASSERT_NE(stmt, nullptr);
  EXPECT_NE(stmt->message.find("reduceByKey"), std::string::npos);
  EXPECT_NE(stmt->message.find("B/row"), std::string::npos);
  const Diagnostic* total = FindCode(lint.diagnostics,
                                     diag::kProgramShuffles);
  ASSERT_NE(total, nullptr);
  EXPECT_NE(total->message.find("2 wide"), std::string::npos);
}

TEST(PlanLint, EmptyMergeAdvisoryOnFirstUpdate) {
  // C is declared empty and immediately merged into: the coGroup's left
  // side is provably empty.
  PlanLintResult lint = PlanLintSource(
      "var C: map[string,int] = map();\n"
      "for w in words do C[w] += 1;");
  EXPECT_TRUE(HasCode(lint.diagnostics, diag::kEmptyMerge));
}

TEST(PlanLint, EmptyMergeWidensThroughWhileLoops) {
  // Vold is assigned inside the while body, so from the second iteration
  // on it is not empty: no P104 for it.
  const std::string src = R"(
    var d: double = 1.0;
    var Vold: vector[double] = vector();
    while (d > 0.1) {
      for i = 0, 3 do
        Vold[i] := V[i];
      d := d / 2.0;
    }
  )";
  PlanLintResult lint = PlanLintSource(src);
  EXPECT_FALSE(HasCode(lint.diagnostics, diag::kEmptyMerge));
}

TEST(PlanLint, CartesianProductAdvisory) {
  PlanLintResult lint = PlanLintSource(R"(
    for i = 0, 3 do
      for j = 0, 3 do
        R[i,j] := A[i] * B[j];
  )");
  EXPECT_TRUE(HasCode(lint.diagnostics, diag::kCartesianProduct));
}

TEST(PlanLint, GroupByOnlyReducedAdvisory) {
  // Hand-built: { (k, +/v) | (k,v) <- V, group by k, +/v > 0 }. The
  // trailing condition keeps the planner from using its reduceByKey
  // special form, so the plan materializes per-key bags that are then
  // only ever reduced — exactly what P101 flags.
  using comp::Pattern;
  using comp::Qualifier;
  auto comp = comp::MakeComp(
      comp::MakeTuple({comp::MakeVar("k"),
                       comp::MakeReduce(BinOp::kAdd, comp::MakeVar("v"))}),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("k"), Pattern::Var("v")}),
           comp::MakeVar("V")),
       Qualifier::GroupBy(Pattern::Var("k"), comp::MakeVar("k")),
       Qualifier::Condition(comp::MakeBin(
           BinOp::kGt, comp::MakeReduce(BinOp::kAdd, comp::MakeVar("v")),
           comp::MakeInt(0)))});
  comp::TargetProgram target;
  target.stmts.push_back(comp::MakeAssign(
      "out", comp::MakeNested(comp), /*is_array=*/true, {2, 1}));
  PlanLintResult lint = LintTargetProgram(target, {"V", "out"});
  const Diagnostic* d = FindCode(lint.diagnostics, diag::kGroupByReduce);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(PlanLint, FilterAboveJoinAdvisory) {
  // { a | (i,a) <- A, (j,b) <- B, j == i, a > 0 }: the a > 0 condition
  // lands above the join but only reads pre-join variables.
  using comp::Pattern;
  using comp::Qualifier;
  auto comp = comp::MakeComp(
      comp::MakeVar("a"),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("a")}),
           comp::MakeVar("A")),
       Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("j"), Pattern::Var("b")}),
           comp::MakeVar("B")),
       Qualifier::Condition(
           comp::MakeBin(BinOp::kEq, comp::MakeVar("j"),
                         comp::MakeVar("i"))),
       Qualifier::Condition(comp::MakeBin(BinOp::kGt, comp::MakeVar("a"),
                                          comp::MakeInt(0)))});
  comp::TargetProgram target;
  target.stmts.push_back(comp::MakeAssign(
      "out", comp::MakeNested(comp), /*is_array=*/true, {3, 1}));
  PlanLintResult lint = LintTargetProgram(target, {"A", "B", "out"});
  const Diagnostic* d = FindCode(lint.diagnostics, diag::kFilterAboveJoin);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(PlanLint, MissedFusionAdvisory) {
  // T is built by a narrow map over A and scanned exactly once: the
  // materialization between the two narrow pipelines is flagged.
  using comp::Pattern;
  using comp::Qualifier;
  auto produce = comp::MakeComp(
      comp::MakeTuple({comp::MakeVar("i"),
                       comp::MakeBin(BinOp::kMul, comp::MakeVar("a"),
                                     comp::MakeInt(2))}),
      {Qualifier::Generator(
          Pattern::Tuple({Pattern::Var("i"), Pattern::Var("a")}),
          comp::MakeVar("A"))});
  auto consume = comp::MakeComp(
      comp::MakeVar("t"),
      {Qualifier::Generator(
          Pattern::Tuple({Pattern::Var("j"), Pattern::Var("t")}),
          comp::MakeVar("T"))});
  comp::TargetProgram target;
  target.stmts.push_back(comp::MakeAssign(
      "T", comp::MakeMerge(comp::MakeVar("T"), comp::MakeNested(produce)),
      /*is_array=*/true, {1, 1}));
  target.stmts.push_back(comp::MakeAssign(
      "s", comp::MakeNested(consume), /*is_array=*/false, {2, 1}));
  PlanLintResult lint = LintTargetProgram(target, {"A", "T"});
  const Diagnostic* d = FindCode(lint.diagnostics, diag::kMissedFusion);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'T'"), std::string::npos);
}

// --------------------- interval-backed cost advisories ---------------------

TEST(PlanLint, TypedShuffleBytesMatchEngineRun) {
  // The reduceByKey rows here are int-keyed int pairs, so the typed byte
  // model prices each at 4 (pair tag) + 8 (key) + 8 (value) = 20 B —
  // not the flat bytes_per_slot guess — and the two range generators
  // bound the key cardinality at 100. Every key is distinct, so the
  // map-side combine collapses nothing and the engine must report
  // exactly the predicted bytes across its reduceByKey shuffle.
  const std::string src =
      "var C: map[int,int] = map();\n"
      "for i = 0, 9 do\n"
      "  for j = 0, 9 do\n"
      "    C[i * 10 + j] += 1;\n";
  PlanLintResult lint = PlanLintSource(src);
  const Diagnostic* card = FindCode(lint.diagnostics, diag::kKeyCardinality);
  ASSERT_NE(card, nullptr);
  EXPECT_EQ(card->severity, Severity::kNote);
  EXPECT_NE(card->message.find("bounded by 100"), std::string::npos)
      << card->message;
  EXPECT_NE(card->message.find("~2000 B"), std::string::npos)
      << card->message;

  runtime::Engine engine;
  auto run = CompileAndRun(src, &engine, {});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  int64_t engine_bytes = 0;
  for (const auto& stage : engine.metrics().stages()) {
    if (stage.label.find("reduceByKey") != std::string::npos) {
      engine_bytes += stage.shuffle_bytes;
    }
  }
  EXPECT_EQ(engine_bytes, 2000);
}

TEST(PlanLint, BroadcastJoinHintOnProvablySmallSide) {
  // W is provably at most 8 rows (constant range bounds), so the join
  // in the S loop gets the P202 broadcast hint; the merge targets do
  // not (they are coGroups, not joins).
  PlanLintResult lint = PlanLintSource(
      "var W: vector[double] = vector();\n"
      "for i = 0, 7 do\n"
      "  W[i] := 0.5 * i;\n"
      "var S: vector[double] = vector();\n"
      "for i = 0, 7 do\n"
      "  S[i] += V[i] * W[i];\n");
  const Diagnostic* hint = FindCode(lint.diagnostics,
                                    diag::kBroadcastJoinHint);
  ASSERT_NE(hint, nullptr);
  EXPECT_EQ(hint->severity, Severity::kWarning);
  EXPECT_NE(hint->message.find("'W'"), std::string::npos);
  EXPECT_NE(hint->message.find("8 row"), std::string::npos);
}

TEST(PlanLint, NoBroadcastHintWithoutRowBound) {
  // V is a host input with no static bound: both join sides are
  // unbounded, so no hint.
  PlanLintResult lint = PlanLintSource(
      "var S: vector[double] = vector();\n"
      "for i = 0, 7 do\n"
      "  S[i] += V[i] * W[i];\n");
  EXPECT_FALSE(HasCode(lint.diagnostics, diag::kBroadcastJoinHint));
}

TEST(PlanLint, AbsintScalarsFeedRowBounds) {
  // The loop bound is the scalar n, constant only through the abstract
  // interpreter's facts: without them W is unbounded (no P202), with
  // them the planner-level lint proves |W| <= 8.
  const std::string src =
      "var n: int = 8;\n"
      "var W: vector[double] = vector();\n"
      "for i = 0, n - 1 do\n"
      "  W[i] := 0.5 * i;\n"
      "var S: vector[double] = vector();\n"
      "for i = 0, n - 1 do\n"
      "  S[i] += V[i] * W[i];\n";
  auto parsed = parser::ParseProgram(src);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  AbsintResult absint = AnalyzeProgram(CanonicalizeIncrements(*parsed));
  ASSERT_TRUE(absint.int_scalars.count("n"));
  EXPECT_EQ(absint.int_scalars.at("n"), Interval::Const(8));

  auto compiled = Compile(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::set<std::string> array_vars;
  for (const auto& [name, info] : compiled->vars) {
    if (info.is_array) array_vars.insert(name);
  }
  PlanLintResult without =
      LintTargetProgram(compiled->target, array_vars);
  EXPECT_FALSE(HasCode(without.diagnostics, diag::kBroadcastJoinHint));

  PlanLintOptions options;
  options.int_scalars = &absint.int_scalars;
  PlanLintResult with =
      LintTargetProgram(compiled->target, array_vars, options);
  const Diagnostic* hint = FindCode(with.diagnostics,
                                    diag::kBroadcastJoinHint);
  ASSERT_NE(hint, nullptr);
  EXPECT_NE(hint->message.find("8 row"), std::string::npos);
}

}  // namespace
}  // namespace diablo::analysis
