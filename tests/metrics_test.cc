// Unit tests for the cluster cost model: LPT makespan, stage accounting
// and scaling behaviour of SimulatedSeconds.

#include "runtime/metrics.h"

#include <gtest/gtest.h>

namespace diablo::runtime {
namespace {

TEST(Lpt, EmptyAndTrivial) {
  EXPECT_EQ(LptMakespan({}, 4), 0);
  EXPECT_EQ(LptMakespan({10}, 4), 10);
  EXPECT_EQ(LptMakespan({10, 10, 10, 10}, 4), 10);
}

TEST(Lpt, BalancesLoad) {
  // 6 tasks of 2 on 3 workers -> 4 each.
  EXPECT_EQ(LptMakespan({2, 2, 2, 2, 2, 2}, 3), 4);
  // A dominant task bounds the makespan.
  EXPECT_EQ(LptMakespan({100, 1, 1, 1}, 4), 100);
  // One worker serializes everything.
  EXPECT_EQ(LptMakespan({3, 4, 5}, 1), 12);
}

TEST(Lpt, NeverBelowLowerBounds) {
  std::vector<int64_t> tasks = {7, 3, 9, 2, 8, 4, 4};
  int64_t total = 0, biggest = 0;
  for (int64_t t : tasks) {
    total += t;
    biggest = std::max(biggest, t);
  }
  for (int workers : {1, 2, 3, 5, 10}) {
    int64_t makespan = LptMakespan(tasks, workers);
    EXPECT_GE(makespan, biggest);
    EXPECT_GE(makespan, (total + workers - 1) / workers);
    EXPECT_LE(makespan, total);
  }
}

TEST(Metrics, Accumulation) {
  Metrics metrics;
  metrics.AddStage({"map", false, {10, 20}, {}, 0});
  metrics.AddStage({"reduce", true, {30}, {15}, 1000});
  EXPECT_EQ(metrics.num_stages(), 2);
  EXPECT_EQ(metrics.num_wide_stages(), 1);
  EXPECT_EQ(metrics.total_work(), 75);
  EXPECT_EQ(metrics.total_shuffle_bytes(), 1000);
  metrics.Clear();
  EXPECT_EQ(metrics.num_stages(), 0);
}

TEST(Metrics, RecoveryCountersAggregateAndClear) {
  Metrics metrics;
  metrics.AddStage({"map", false, {10}, {}, 0, /*attempts=*/3,
                    /*recomputed_partitions=*/1, /*recovery_seconds=*/0.25});
  metrics.AddStage({"reduce", true, {30}, {15}, 1000, 5, 2, 0.5});
  EXPECT_EQ(metrics.total_attempts(), 8);
  EXPECT_EQ(metrics.total_recomputed_partitions(), 3);
  EXPECT_DOUBLE_EQ(metrics.total_recovery_seconds(), 0.75);
  metrics.Clear();
  EXPECT_EQ(metrics.num_stages(), 0);
  EXPECT_EQ(metrics.total_attempts(), 0);
  EXPECT_EQ(metrics.total_recomputed_partitions(), 0);
  EXPECT_DOUBLE_EQ(metrics.total_recovery_seconds(), 0.0);
}

TEST(Metrics, SimulatedSecondsDecomposesIntoFaultFreePlusRecovery) {
  Metrics metrics;
  metrics.AddStage({"map", false, {10, 20}, {}, 0, 4, 0, 0.125});
  metrics.AddStage({"join", true, {5, 5}, {7}, 2048, 3, 1, 0.0625});
  ClusterModel model;
  EXPECT_DOUBLE_EQ(metrics.SimulatedSeconds(model),
                   metrics.SimulatedFaultFreeSeconds(model) +
                       metrics.total_recovery_seconds());
  // With no recovery charged, both figures coincide.
  Metrics clean;
  clean.AddStage({"map", false, {10, 20}, {}, 0, 2, 0, 0.0});
  EXPECT_DOUBLE_EQ(clean.SimulatedSeconds(model),
                   clean.SimulatedFaultFreeSeconds(model));
}

TEST(Metrics, ReportIncludesRecoveryCounters) {
  Metrics metrics;
  metrics.AddStage({"grp", true, {5}, {3}, 42, 6, 2, 0.5});
  std::string report = metrics.Report();
  EXPECT_NE(report.find("attempts=6"), std::string::npos);
  EXPECT_NE(report.find("recomputed=2"), std::string::npos);
  EXPECT_NE(report.find("recovery_s="), std::string::npos);
}

TEST(Metrics, MoreWorkersNeverSlower) {
  Metrics metrics;
  std::vector<int64_t> tasks;
  for (int i = 0; i < 32; ++i) tasks.push_back(1000 + i * 17);
  metrics.AddStage({"stage", true, tasks, tasks, 1 << 20});
  ClusterModel model;
  double prev = 1e100;
  for (int workers : {1, 2, 4, 8, 16}) {
    model.num_workers = workers;
    double t = metrics.SimulatedSeconds(model);
    EXPECT_LE(t, prev) << workers;
    prev = t;
  }
}

TEST(Metrics, ShuffleBytesCost) {
  ClusterModel model;
  model.num_workers = 2;
  model.wide_stage_latency_seconds = 0;
  model.narrow_stage_latency_seconds = 0;
  model.seconds_per_work_unit = 0;
  Metrics light, heavy;
  light.AddStage({"s", true, {}, {}, 1000});
  heavy.AddStage({"s", true, {}, {}, 100000});
  EXPECT_GT(heavy.SimulatedSeconds(model), light.SimulatedSeconds(model));
  EXPECT_DOUBLE_EQ(heavy.SimulatedSeconds(model),
                   100.0 * light.SimulatedSeconds(model));
}

TEST(Metrics, WideStagesPayLatency) {
  ClusterModel model;
  Metrics narrow, wide;
  narrow.AddStage({"n", false, {1}, {}, 0});
  wide.AddStage({"w", true, {1}, {}, 0});
  EXPECT_GT(wide.SimulatedSeconds(model), narrow.SimulatedSeconds(model));
}

TEST(Metrics, Report) {
  Metrics metrics;
  metrics.AddStage({"join", true, {5}, {3}, 42});
  std::string report = metrics.Report();
  EXPECT_NE(report.find("join"), std::string::npos);
  EXPECT_NE(report.find("shuffle_bytes=42"), std::string::npos);
}

}  // namespace
}  // namespace diablo::runtime
