// Unit tests for the cluster cost model (LPT makespan, stage accounting
// and scaling behaviour of SimulatedSeconds) and for the MetricsRegistry
// (counter/gauge/histogram semantics and the Prometheus exposition).

#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/metrics_registry.h"

namespace diablo::runtime {
namespace {

TEST(Lpt, EmptyAndTrivial) {
  EXPECT_EQ(LptMakespan({}, 4), 0);
  EXPECT_EQ(LptMakespan({10}, 4), 10);
  EXPECT_EQ(LptMakespan({10, 10, 10, 10}, 4), 10);
}

TEST(Lpt, BalancesLoad) {
  // 6 tasks of 2 on 3 workers -> 4 each.
  EXPECT_EQ(LptMakespan({2, 2, 2, 2, 2, 2}, 3), 4);
  // A dominant task bounds the makespan.
  EXPECT_EQ(LptMakespan({100, 1, 1, 1}, 4), 100);
  // One worker serializes everything.
  EXPECT_EQ(LptMakespan({3, 4, 5}, 1), 12);
}

TEST(Lpt, NeverBelowLowerBounds) {
  std::vector<int64_t> tasks = {7, 3, 9, 2, 8, 4, 4};
  int64_t total = 0, biggest = 0;
  for (int64_t t : tasks) {
    total += t;
    biggest = std::max(biggest, t);
  }
  for (int workers : {1, 2, 3, 5, 10}) {
    int64_t makespan = LptMakespan(tasks, workers);
    EXPECT_GE(makespan, biggest);
    EXPECT_GE(makespan, (total + workers - 1) / workers);
    EXPECT_LE(makespan, total);
  }
}

TEST(Metrics, Accumulation) {
  Metrics metrics;
  metrics.AddStage({"map", false, {10, 20}, {}, 0});
  metrics.AddStage({"reduce", true, {30}, {15}, 1000});
  EXPECT_EQ(metrics.num_stages(), 2);
  EXPECT_EQ(metrics.num_wide_stages(), 1);
  EXPECT_EQ(metrics.total_work(), 75);
  EXPECT_EQ(metrics.total_shuffle_bytes(), 1000);
  metrics.Clear();
  EXPECT_EQ(metrics.num_stages(), 0);
}

TEST(Metrics, RecoveryCountersAggregateAndClear) {
  Metrics metrics;
  metrics.AddStage({"map", false, {10}, {}, 0, /*attempts=*/3,
                    /*recomputed_partitions=*/1, /*recovery_seconds=*/0.25});
  metrics.AddStage({"reduce", true, {30}, {15}, 1000, 5, 2, 0.5});
  EXPECT_EQ(metrics.total_attempts(), 8);
  EXPECT_EQ(metrics.total_recomputed_partitions(), 3);
  EXPECT_DOUBLE_EQ(metrics.total_recovery_seconds(), 0.75);
  metrics.Clear();
  EXPECT_EQ(metrics.num_stages(), 0);
  EXPECT_EQ(metrics.total_attempts(), 0);
  EXPECT_EQ(metrics.total_recomputed_partitions(), 0);
  EXPECT_DOUBLE_EQ(metrics.total_recovery_seconds(), 0.0);
}

TEST(Metrics, SimulatedSecondsDecomposesIntoFaultFreePlusRecovery) {
  Metrics metrics;
  metrics.AddStage({"map", false, {10, 20}, {}, 0, 4, 0, 0.125});
  metrics.AddStage({"join", true, {5, 5}, {7}, 2048, 3, 1, 0.0625});
  ClusterModel model;
  EXPECT_DOUBLE_EQ(metrics.SimulatedSeconds(model),
                   metrics.SimulatedFaultFreeSeconds(model) +
                       metrics.total_recovery_seconds());
  // With no recovery charged, both figures coincide.
  Metrics clean;
  clean.AddStage({"map", false, {10, 20}, {}, 0, 2, 0, 0.0});
  EXPECT_DOUBLE_EQ(clean.SimulatedSeconds(model),
                   clean.SimulatedFaultFreeSeconds(model));
}

TEST(Metrics, ReportIncludesRecoveryCounters) {
  Metrics metrics;
  metrics.AddStage({"grp", true, {5}, {3}, 42, 6, 2, 0.5});
  std::string report = metrics.Report();
  EXPECT_NE(report.find("attempts=6"), std::string::npos);
  EXPECT_NE(report.find("recomputed=2"), std::string::npos);
  EXPECT_NE(report.find("recovery_s="), std::string::npos);
}

TEST(Metrics, MoreWorkersNeverSlower) {
  Metrics metrics;
  std::vector<int64_t> tasks;
  for (int i = 0; i < 32; ++i) tasks.push_back(1000 + i * 17);
  metrics.AddStage({"stage", true, tasks, tasks, 1 << 20});
  ClusterModel model;
  double prev = 1e100;
  for (int workers : {1, 2, 4, 8, 16}) {
    model.num_workers = workers;
    double t = metrics.SimulatedSeconds(model);
    EXPECT_LE(t, prev) << workers;
    prev = t;
  }
}

TEST(Metrics, ShuffleBytesCost) {
  ClusterModel model;
  model.num_workers = 2;
  model.wide_stage_latency_seconds = 0;
  model.narrow_stage_latency_seconds = 0;
  model.seconds_per_work_unit = 0;
  Metrics light, heavy;
  light.AddStage({"s", true, {}, {}, 1000});
  heavy.AddStage({"s", true, {}, {}, 100000});
  EXPECT_GT(heavy.SimulatedSeconds(model), light.SimulatedSeconds(model));
  EXPECT_DOUBLE_EQ(heavy.SimulatedSeconds(model),
                   100.0 * light.SimulatedSeconds(model));
}

TEST(Metrics, WideStagesPayLatency) {
  ClusterModel model;
  Metrics narrow, wide;
  narrow.AddStage({"n", false, {1}, {}, 0});
  wide.AddStage({"w", true, {1}, {}, 0});
  EXPECT_GT(wide.SimulatedSeconds(model), narrow.SimulatedSeconds(model));
}

TEST(Metrics, Report) {
  Metrics metrics;
  metrics.AddStage({"join", true, {5}, {3}, 42});
  std::string report = metrics.Report();
  EXPECT_NE(report.find("join"), std::string::npos);
  EXPECT_NE(report.find("shuffle_bytes=42"), std::string::npos);
}

TEST(Metrics, MemoryWatermarksAreMaximaNotSums) {
  // RSS is a process high-water mark and accumulator bytes are per-task
  // peaks: the run-level figures are maxima over stages, never sums.
  Metrics metrics;
  StageStats a;
  a.label = "map";
  a.peak_rss_bytes = 1000;
  a.accumulator_bytes_peak = 50;
  StageStats b;
  b.label = "reduce";
  b.peak_rss_bytes = 3000;
  b.accumulator_bytes_peak = 20;
  metrics.AddStage(std::move(a));
  metrics.AddStage(std::move(b));
  EXPECT_EQ(metrics.max_peak_rss_bytes(), 3000);
  EXPECT_EQ(metrics.max_accumulator_bytes_peak(), 50);
  metrics.Clear();
  EXPECT_EQ(metrics.max_peak_rss_bytes(), 0);
  EXPECT_EQ(metrics.max_accumulator_bytes_peak(), 0);
}

// ----------------------------- MetricsRegistry --------------------------

TEST(MetricsRegistryTest, CountersAreMonotoneAndKindBindsAtFirstUse) {
  MetricsRegistry reg;
  reg.CounterAdd("requests", 2);
  reg.CounterAdd("requests", 3);
  reg.CounterAdd("requests", -5);  // ignored: counters are monotone
  EXPECT_EQ(reg.CounterValue("requests"), 5);
  // The name is bound to the counter kind now; other kinds are ignored.
  reg.GaugeSet("requests", 99);
  reg.HistogramObserve("requests", 1);
  EXPECT_EQ(reg.CounterValue("requests"), 5);
  EXPECT_EQ(reg.GaugeValue("requests"), 0);
  EXPECT_EQ(reg.HistogramCount("requests"), 0);
}

TEST(MetricsRegistryTest, GaugeSetOverwritesAndGaugeMaxKeepsHighWater) {
  MetricsRegistry reg;
  reg.GaugeSet("level", 10);
  reg.GaugeSet("level", 3);
  EXPECT_EQ(reg.GaugeValue("level"), 3);
  reg.GaugeMax("peak", 10);
  reg.GaugeMax("peak", 3);
  reg.GaugeMax("peak", 12);
  EXPECT_EQ(reg.GaugeValue("peak"), 12);
}

TEST(MetricsRegistryTest, LabelsSeparateSeries) {
  MetricsRegistry reg;
  reg.CounterAdd("tasks", 1, {{"stage", "0"}});
  reg.CounterAdd("tasks", 2, {{"stage", "1"}});
  reg.CounterAdd("tasks", 3, {{"stage", "0"}});
  EXPECT_EQ(reg.CounterValue("tasks", {{"stage", "0"}}), 4);
  EXPECT_EQ(reg.CounterValue("tasks", {{"stage", "1"}}), 2);
  EXPECT_EQ(reg.CounterValue("tasks"), 0);
}

TEST(MetricsRegistryTest, HistogramUsesDecadeBuckets) {
  MetricsRegistry reg;
  reg.HistogramObserve("lat", 0.5);
  reg.HistogramObserve("lat", 50);
  reg.HistogramObserve("lat", 5e12);  // beyond the last bound: +Inf
  EXPECT_EQ(reg.HistogramCount("lat"), 3);
  EXPECT_EQ(MetricsRegistry::HistogramBuckets().front(), 1.0);
  EXPECT_EQ(MetricsRegistry::HistogramBuckets().back(), 1e12);
}

TEST(MetricsRegistryTest, ProcessPeakRssIsPositiveAndMonotone) {
  const int64_t first = MetricsRegistry::ProcessPeakRssBytes();
  EXPECT_GT(first, 0);
  EXPECT_GE(MetricsRegistry::ProcessPeakRssBytes(), first);
}

TEST(MetricsRegistryTest, PrometheusGolden) {
  MetricsRegistry reg;
  reg.CounterAdd("tasks_total", 3, {{"stage", "0"}});
  reg.GaugeSet("rss_bytes", 1024);
  reg.HistogramObserve("dur_us", 5);
  reg.HistogramObserve("dur_us", 5000);
  std::ostringstream out;
  reg.WritePrometheus(out);
  const std::string kExpected =
      "# TYPE dur_us histogram\n"
      "dur_us_bucket{le=\"1\"} 0\n"
      "dur_us_bucket{le=\"10\"} 1\n"
      "dur_us_bucket{le=\"100\"} 1\n"
      "dur_us_bucket{le=\"1000\"} 1\n"
      "dur_us_bucket{le=\"10000\"} 2\n"
      "dur_us_bucket{le=\"100000\"} 2\n"
      "dur_us_bucket{le=\"1000000\"} 2\n"
      "dur_us_bucket{le=\"10000000\"} 2\n"
      "dur_us_bucket{le=\"100000000\"} 2\n"
      "dur_us_bucket{le=\"1000000000\"} 2\n"
      "dur_us_bucket{le=\"10000000000\"} 2\n"
      "dur_us_bucket{le=\"100000000000\"} 2\n"
      "dur_us_bucket{le=\"1000000000000\"} 2\n"
      "dur_us_bucket{le=\"+Inf\"} 2\n"
      "dur_us_sum 5005\n"
      "dur_us_count 2\n"
      "# TYPE rss_bytes gauge\n"
      "rss_bytes 1024\n"
      "# TYPE tasks_total counter\n"
      "tasks_total{stage=\"0\"} 3\n";
  EXPECT_EQ(out.str(), kExpected);
}

TEST(MetricsRegistryTest, JsonExportAndClear) {
  MetricsRegistry reg;
  reg.CounterAdd("c", 7);
  reg.GaugeSet("g", 2.5, {{"k", "v"}});
  reg.HistogramObserve("h", 42);
  std::ostringstream out;
  reg.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"c\",\"labels\":{},\"value\":7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"k\":\"v\"},\"value\":2.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"sum\":42,\"count\":1"), std::string::npos);
  reg.Clear();
  EXPECT_EQ(reg.CounterValue("c"), 0);
  EXPECT_EQ(reg.HistogramCount("h"), 0);
}

}  // namespace
}  // namespace diablo::runtime
