// Fault-tolerance tests: deterministic injection, retry budgets,
// lineage-based recomputation, checkpoint truncation, and the central
// invariant — any run that completes under fault injection produces
// results identical (bit for bit, floating point included) to the
// fault-free run.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>

#include "runtime/engine.h"
#include "runtime/fault.h"
#include "workloads/harness.h"
#include "workloads/programs.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }

ValueVec KeyedRows(int n, int keys) {
  ValueVec rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(I(i % keys), Value::MakeDouble(0.1 * i)));
  }
  return rows;
}

/// A pipeline mixing narrow and wide operators, returning the collected
/// (deterministically ordered) result.
StatusOr<ValueVec> RunPipeline(Engine& engine, const ValueVec& rows) {
  Dataset ds = engine.Parallelize(rows);
  DIABLO_ASSIGN_OR_RETURN(
      Dataset scaled, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
        return Value::MakePair(
            v.tuple()[0],
            Value::MakeDouble(v.tuple()[1].AsDouble() * 1.5 + 1.0));
      }, "pl.scale"));
  DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                          engine.ReduceByKey(scaled, BinOp::kAdd, "pl.sum"));
  DIABLO_ASSIGN_OR_RETURN(Dataset grouped, engine.GroupByKey(scaled, "pl.grp"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset sizes,
      engine.Map(grouped, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(
            row.tuple()[0],
            I(static_cast<int64_t>(row.tuple()[1].bag().size())));
      }, "pl.size"));
  DIABLO_ASSIGN_OR_RETURN(Dataset joined,
                          engine.Join(sums, sizes, "pl.join"));
  return engine.Collect(joined);
}

FaultConfig MixedFaults(uint64_t seed) {
  FaultConfig faults;
  faults.seed = seed;
  faults.task_failure_rate = 0.08;
  faults.straggler_rate = 0.05;
  faults.max_task_attempts = 8;
  return faults;
}

TEST(FaultTolerance, FaultyRunMatchesFaultFreeRun) {
  ValueVec rows = KeyedRows(300, 11);
  Engine clean{EngineConfig{}};
  auto expected = RunPipeline(clean, rows);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  EngineConfig config;
  config.faults = MixedFaults(7);
  Engine faulty(config);
  auto got = RunPipeline(faulty, rows);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Bit-identical, not approximately equal.
  EXPECT_EQ(*got, *expected);
  // Faults actually fired: more attempts than tasks.
  EXPECT_GT(faulty.metrics().total_attempts(), clean.metrics().total_attempts());
  EXPECT_GT(faulty.metrics().total_recovery_seconds(), 0.0);
  // Recovery is charged on top of the fault-free figure.
  EXPECT_DOUBLE_EQ(faulty.metrics().SimulatedSeconds(config.cluster),
                   faulty.metrics().SimulatedFaultFreeSeconds(config.cluster) +
                       faulty.metrics().total_recovery_seconds());
}

TEST(FaultTolerance, FixedSeedIsFullyDeterministic) {
  ValueVec rows = KeyedRows(200, 13);
  auto run = [&](int threads) {
    EngineConfig config;
    config.host_threads = threads;
    config.faults = MixedFaults(42);
    Engine engine(config);
    auto out = RunPipeline(engine, rows);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::make_tuple(out.ok() ? *out : ValueVec{},
                           engine.metrics().total_attempts(),
                           engine.metrics().total_recomputed_partitions(),
                           engine.metrics().total_recovery_seconds(),
                           engine.metrics().SimulatedSeconds(config.cluster));
  };
  auto first = run(1);
  auto second = run(1);
  // Two runs, same seed: identical results, attempts, recomputations,
  // and simulated cost.
  EXPECT_EQ(first, second);
  // Thread interleaving must not leak into anything observable either:
  // injector draws are keyed by coordinates, not by execution order.
  auto threaded = run(8);
  EXPECT_EQ(first, threaded);
}

TEST(FaultTolerance, DifferentSeedsGiveSameResultsDifferentSchedules) {
  ValueVec rows = KeyedRows(200, 13);
  EngineConfig a_config;
  a_config.faults = MixedFaults(1);
  EngineConfig b_config;
  b_config.faults = MixedFaults(2);
  Engine a(a_config), b(b_config);
  auto a_out = RunPipeline(a, rows);
  auto b_out = RunPipeline(b, rows);
  ASSERT_TRUE(a_out.ok() && b_out.ok());
  EXPECT_EQ(*a_out, *b_out);  // results never depend on the seed
}

TEST(FaultTolerance, KillDirectiveRetriesAndRecovers) {
  ValueVec rows = KeyedRows(50, 5);
  Engine clean{EngineConfig{}};
  auto expected = RunPipeline(clean, rows);
  ASSERT_TRUE(expected.ok());

  EngineConfig config;
  config.faults.kill_tasks.push_back({/*stage=*/0, /*partition=*/3});
  Engine engine(config);
  auto got = RunPipeline(engine, rows);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
  // Exactly one extra attempt across the whole run.
  EXPECT_EQ(engine.metrics().total_attempts(),
            clean.metrics().total_attempts() + 1);
  EXPECT_GT(engine.metrics().total_recovery_seconds(), 0.0);
}

TEST(FaultTolerance, LostPartitionIsRecomputedFromLineage) {
  ValueVec rows = KeyedRows(100, 7);
  Engine clean{EngineConfig{}};
  auto expected = RunPipeline(clean, rows);
  ASSERT_TRUE(expected.ok());

  // Stage ids in RunPipeline under fusion: pl.scale and pl.size are
  // deferred, so 0-2 are pl.sum (combine/shuffle/reduce), 3-4 are pl.grp
  // (shuffle/group) and 5-7 are pl.join. Losing the sizes-side input of
  // the join (input 1 of stage 5) forces the engine to rebuild the lost
  // grouped partition from pl.grp's lineage — a single-pass recompute,
  // not a durable re-read — and replay the pending pl.size chain on it.
  EngineConfig config;
  config.faults.lose_partitions.push_back(
      {/*stage=*/5, /*partition=*/2, /*input_index=*/1});
  Engine engine(config);
  auto got = RunPipeline(engine, rows);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
  EXPECT_EQ(engine.metrics().total_recomputed_partitions(), 1);
  EXPECT_GT(engine.metrics().total_recovery_seconds(), 0.0);
}

TEST(FaultTolerance, LostSourcePartitionIsRereadDurably) {
  ValueVec rows = KeyedRows(60, 6);
  Engine clean{EngineConfig{}};
  auto expected = RunPipeline(clean, rows);
  ASSERT_TRUE(expected.ok());

  // Stage 0 reads the parallelized source directly: durable lineage.
  EngineConfig config;
  config.faults.lose_partitions.push_back({0, 1, 0});
  Engine engine(config);
  auto got = RunPipeline(engine, rows);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
  EXPECT_EQ(engine.metrics().total_recomputed_partitions(), 1);
}

TEST(FaultTolerance, ExhaustedRetryBudgetNamesStagePartitionAndAttempts) {
  EngineConfig config;
  config.faults.task_failure_rate = 1.0;  // every attempt dies
  config.faults.max_task_attempts = 3;
  Engine engine(config);
  Dataset ds = engine.Parallelize(KeyedRows(40, 4));
  auto mapped = engine.Map(
      ds, [](const Value& v) -> StatusOr<Value> { return v; }, "doomed.map");
  ASSERT_TRUE(mapped.ok());  // deferred: the doomed wave runs at the action
  auto result = engine.Collect(*mapped);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("doomed.map"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3 attempts"), std::string::npos) << msg;
  EXPECT_NE(msg.find("retry budget"), std::string::npos) << msg;
}

TEST(FaultTolerance, GenuineErrorsAreNotRetried) {
  EngineConfig config;
  config.faults = MixedFaults(3);
  config.faults.task_failure_rate = 0.0;  // keep the schedule quiet
  Engine engine(config);
  Dataset ds = engine.Range(0, 9);
  auto mapped = engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
    if (v.AsInt() == 7) return Status::RuntimeError("boom");
    return v;
  });
  ASSERT_TRUE(mapped.ok());
  auto result = engine.Collect(*mapped);
  ASSERT_FALSE(result.ok());
  // Propagated verbatim — no retry wrapper, no budget message.
  EXPECT_EQ(result.status().message(), "boom");
}

TEST(FaultTolerance, CorruptedShufflePayloadsAreDetectedAndRetried) {
  ValueVec rows = KeyedRows(2000, 9);
  EngineConfig clean_config;
  clean_config.serialize_shuffles = true;
  Engine clean(clean_config);
  auto expected = RunPipeline(clean, rows);
  ASSERT_TRUE(expected.ok());

  EngineConfig config;
  config.serialize_shuffles = true;
  config.faults.seed = 11;
  config.faults.corrupt_shuffle_rate = 0.002;
  config.faults.max_task_attempts = 10;
  Engine engine(config);
  auto got = RunPipeline(engine, rows);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
  EXPECT_GT(engine.metrics().total_attempts(),
            clean.metrics().total_attempts());
}

TEST(FaultTolerance, CheckpointTruncatesLineageDepth) {
  EngineConfig config;
  config.faults = MixedFaults(5);
  config.faults.task_failure_rate = 0.0;
  Engine engine(config);
  Dataset ds = engine.Parallelize(KeyedRows(40, 4));
  EXPECT_EQ(ds.lineage_depth(), 0);  // sources are durable
  for (int i = 0; i < 3; ++i) {
    auto next = engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
      return v;
    });
    ASSERT_TRUE(next.ok());
    ds = *next;
  }
  EXPECT_EQ(ds.lineage_depth(), 3);
  auto ckpt = engine.Checkpoint(ds);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_EQ(ckpt->lineage_depth(), 0);
  EXPECT_TRUE(ckpt->lineage()->durable);
  EXPECT_EQ(ckpt->TotalRows(), ds.TotalRows());
  // The write is charged: one narrow stage with the serialized bytes.
  const StageStats& stage = engine.metrics().stages().back();
  EXPECT_EQ(stage.label, "checkpoint");
  EXPECT_GT(stage.shuffle_bytes, 0);
}

TEST(FaultTolerance, RecoveryAfterCheckpointReadsTheCheckpoint) {
  ValueVec rows = KeyedRows(80, 8);
  // Clean reference of map -> checkpoint -> map.
  auto run = [&](EngineConfig config) -> StatusOr<ValueVec> {
    Engine engine(config);
    Dataset ds = engine.Parallelize(rows);
    DIABLO_ASSIGN_OR_RETURN(
        Dataset a, engine.Map(ds, [](const Value& v) -> StatusOr<Value> {
          return Value::MakePair(v.tuple()[0],
                                 Value::MakeDouble(v.tuple()[1].AsDouble() * 2));
        }));                                       // deferred into stage 0
    DIABLO_ASSIGN_OR_RETURN(Dataset c, engine.Checkpoint(a));  // stage 0
    DIABLO_ASSIGN_OR_RETURN(
        Dataset b, engine.Map(c, [](const Value& v) -> StatusOr<Value> {
          return Value::MakePair(v.tuple()[0],
                                 Value::MakeDouble(v.tuple()[1].AsDouble() + 1));
        }));                                       // deferred into stage 1
    return engine.Collect(b);
  };
  auto expected = run(EngineConfig{});
  ASSERT_TRUE(expected.ok());
  EngineConfig config;
  // The checkpointed input of the collecting stage is lost: recovery is
  // a durable re-read, never a recomputation of the first map.
  config.faults.lose_partitions.push_back({1, 4, 0});
  auto got = run(config);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
}

// ---------------------------------------------------------------------------
// Workload-level invariants: hand-written Figure-3 programs and the
// compiled (DIABLO-translated) path, including the iterative PageRank
// which checkpoints its loop-carried ranks under injection.

class FaultWorkloadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultWorkloadTest, HandwrittenFaultyMatchesFaultFree) {
  const auto& spec = diablo::bench::GetProgram(GetParam());
  std::mt19937_64 rng(17);
  diablo::Bindings inputs = spec.make_inputs(
      std::string(GetParam()) == "pagerank" ? 8 : 2000, rng);

  EngineConfig clean;
  auto expected = diablo::bench::MeasureHandwritten(spec, inputs, clean);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  EngineConfig config;
  config.faults.seed = 29;
  config.faults.task_failure_rate = 0.05;
  config.faults.straggler_rate = 0.05;
  config.faults.max_task_attempts = 8;
  auto faulty = diablo::bench::MeasureHandwritten(spec, inputs, config);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(faulty->output, expected->output) << GetParam();
  EXPECT_GT(faulty->attempts, expected->attempts);
  EXPECT_GT(faulty->recovery_seconds, 0.0);
  EXPECT_DOUBLE_EQ(faulty->simulated_seconds,
                   faulty->fault_free_seconds + faulty->recovery_seconds);
}

INSTANTIATE_TEST_SUITE_P(Workloads, FaultWorkloadTest,
                         ::testing::Values("word_count", "group_by", "kmeans",
                                           "pagerank"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(FaultTolerance, CompiledProgramSurvivesInjection) {
  const auto& spec = diablo::bench::GetProgram("pagerank");
  std::mt19937_64 rng(17);
  diablo::Bindings inputs = spec.make_inputs(8, rng);

  EngineConfig clean;
  auto expected = diablo::bench::RunDiablo(spec, inputs, clean);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  EngineConfig config;
  config.faults.seed = 31;
  config.faults.task_failure_rate = 0.03;
  config.faults.max_task_attempts = 8;
  // Force the executor's automatic loop checkpointing to kick in early.
  config.faults.lineage_checkpoint_depth = 4;
  auto faulty = diablo::bench::RunDiablo(spec, inputs, config);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(faulty->output, expected->output);
  EXPECT_GT(faulty->attempts, expected->attempts);
}

}  // namespace
}  // namespace diablo::runtime
