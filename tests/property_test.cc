// Property-based soundness tests (Theorem A.1): randomly generated
// programs inside the Definition 3.1 class must produce identical results
// under the DIABLO pipeline and the sequential reference interpreter,
// across random inputs and seeds.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "tests/test_util.h"

namespace diablo::testing {
namespace {

/// A small random expression over the variable `v` and constants.
std::string RandomScalarExpr(std::mt19937_64& rng, const std::string& v) {
  static const char* kOps[] = {"+", "*", "-"};
  switch (rng() % 6) {
    case 0:
      return v;
    case 1:
      return "1.0";
    case 2:
      return "0.5";
    case 3:
      return StrCat("(", v, " ", kOps[rng() % 3], " 2.0)");
    case 4:
      return StrCat("(", v, " ", kOps[rng() % 3], " ", v, ")");
    default:
      return StrCat("(", v, " + 1.0)");
  }
}

std::string RandomMonoid(std::mt19937_64& rng) {
  // min/max excluded from * families to keep values bounded; all four
  // monoids appear across seeds.
  static const char* kOps[] = {"+", "+", "min", "max"};
  return kOps[rng() % 4];
}

Bindings RandomInputs(std::mt19937_64& rng, int n) {
  ValueVec v_rows, w_rows, k_rows;
  for (int i = 0; i < n; ++i) {
    v_rows.push_back(
        Pair(IV(i), DV(static_cast<double>(rng() % 100) / 4)));
    w_rows.push_back(
        Pair(IV(i), DV(static_cast<double>(rng() % 100) / 4)));
    k_rows.push_back(
        Pair(IV(i), IV(static_cast<int64_t>(rng() % 5))));
  }
  return {{"V", Bag(v_rows)}, {"W", Bag(w_rows)}, {"K", Bag(k_rows)}};
}

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, RandomAggregationsAgree) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  // A sequence of scalar and keyed aggregations over V, each possibly
  // filtered. All satisfy Definition 3.1 by construction (aggregated
  // destinations are never read).
  std::ostringstream src;
  int num_stmts = 1 + static_cast<int>(rng() % 3);
  std::vector<std::string> scalars, arrays;
  src << "var C: map[int,double] = map();\n";
  for (int s = 0; s < num_stmts; ++s) {
    std::string op = RandomMonoid(rng);
    std::string acc = StrCat("acc", s);
    scalars.push_back(acc);
    double init = op == "min" ? 1e9 : (op == "max" ? -1e9 : 0.0);
    src << "var " << acc << ": double = " << init << ";\n";
    src << "for v" << s << " in V do\n";
    if (rng() % 2 == 0) {
      src << "  if (v" << s << " < " << (25 + rng() % 50) << ".0)\n  ";
    }
    src << "  " << acc << " " << op << "= "
        << RandomScalarExpr(rng, StrCat("v", s)) << ";\n";
  }
  // One keyed aggregation through the indirection array K.
  src << "for i = 0, 19 do C[K[i]] += V[i] * 2.0;\n";
  arrays.push_back("C");

  PipelineChecker checker(src.str(), RandomInputs(rng, 20));
  for (const std::string& name : scalars) {
    checker.ExpectScalarAgrees(name, 1e-6);
  }
  for (const std::string& name : arrays) {
    checker.ExpectArrayAgrees(name, 1e-6);
  }
}

TEST_P(PropertyTest, RandomAffineUpdatesAgree) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  // Affine writes R_s[i + c] := f(W[i + c'], i) over fresh destination
  // arrays (never read, so Definition 3.1 holds by construction).
  std::ostringstream src;
  std::vector<std::string> arrays;
  int num_stmts = 1 + static_cast<int>(rng() % 3);
  for (int s = 0; s < num_stmts; ++s) {
    std::string dest = StrCat("R", s);
    arrays.push_back(dest);
    src << "var " << dest << ": vector[double] = vector();\n";
    int write_shift = static_cast<int>(rng() % 3);
    int read_shift = static_cast<int>(rng() % 3);
    const char* incr = rng() % 2 == 0 ? ":=" : "+=";
    src << "for i" << s << " = 2, 17 do " << dest << "[i" << s;
    if (write_shift != 0) src << " + " << write_shift;
    src << "] " << incr << " "
        << RandomScalarExpr(rng, StrCat("W[i", s,
                                        read_shift == 0
                                            ? "]"
                                            : StrCat(" - ", read_shift, "]")))
        << ";\n";
  }
  PipelineChecker checker(src.str(), RandomInputs(rng, 20));
  for (const std::string& name : arrays) {
    checker.ExpectArrayAgrees(name, 1e-6);
  }
}

TEST_P(PropertyTest, RandomIncrementThenReadAgree) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  // Exception (b) shape: aggregate into T[i] under an inner loop, then
  // read T[i] into a fresh array — the restriction pattern from §3.2.
  std::ostringstream src;
  src << "var T: vector[double] = vector();\n";
  src << "var O: vector[double] = vector();\n";
  int inner = 2 + static_cast<int>(rng() % 4);
  src << "for i = 0, 9 do {\n";
  src << "  for j = 0, " << inner << " do\n";
  src << "    T[i] += " << RandomScalarExpr(rng, "W[i]") << ";\n";
  src << "  O[i] := T[i] * 2.0;\n";
  src << "}\n";
  PipelineChecker checker(src.str(), RandomInputs(rng, 12));
  checker.ExpectArrayAgrees("T", 1e-6);
  checker.ExpectArrayAgrees("O", 1e-6);
}

TEST_P(PropertyTest, RandomWhileLoopsAgree) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 1543 + 29);
  int steps = 1 + static_cast<int>(rng() % 4);
  std::ostringstream src;
  src << "var k: int = 0;\n";
  src << "var s: double = 0.0;\n";
  src << "while (k < " << steps << ") {\n";
  src << "  k += 1;\n";
  src << "  for v in V do s += " << RandomScalarExpr(rng, "v") << ";\n";
  src << "  for i = 0, 9 do A[i] += W[i] * " << (1 + rng() % 3) << ".0;\n";
  src << "}\n";
  Bindings inputs = RandomInputs(rng, 10);
  ValueVec a_rows;
  for (int i = 0; i < 10; ++i) a_rows.push_back(Pair(IV(i), DV(0)));
  inputs["A"] = Bag(a_rows);
  PipelineChecker checker(src.str(), inputs);
  checker.ExpectScalarAgrees("s", 1e-6);
  checker.ExpectArrayAgrees("A", 1e-6);
  checker.ExpectScalarAgrees("k");
}

TEST_P(PropertyTest, RandomMatrixProgramsAgree) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 6151 + 3);
  // Random nests over two input matrices: elementwise updates with
  // random affine index shifts plus a row/column aggregation.
  std::ostringstream src;
  src << "var R: matrix[double] = matrix();\n";
  src << "var rowsum: vector[double] = vector();\n";
  int di = static_cast<int>(rng() % 2);
  int dj = static_cast<int>(rng() % 2);
  const char* op = rng() % 2 == 0 ? "+" : "*";
  const char* incr = rng() % 2 == 0 ? ":=" : "+=";
  src << "for i = 0, 5 do\n  for j = 0, 5 do\n";
  src << "    R[i";
  if (di != 0) src << " + " << di;
  src << ", j";
  if (dj != 0) src << " + " << dj;
  src << "] " << incr << " M[i,j] " << op << " N[j,i];\n";
  // Aggregate rows of M (group by the row index, a Rule-17 candidate
  // when the key is unique, a real group-by otherwise).
  if (rng() % 2 == 0) {
    src << "for i = 0, 5 do\n  for j = 0, 5 do\n"
        << "    rowsum[i] += M[i,j];\n";
  } else {
    src << "for i = 0, 5 do\n  for j = 0, 5 do\n"
        << "    rowsum[j] += M[i,j] * 0.5;\n";
  }
  std::vector<std::vector<double>> m(6, std::vector<double>(6));
  std::vector<std::vector<double>> n(6, std::vector<double>(6));
  for (auto& row : m) {
    for (double& x : row) x = static_cast<double>(rng() % 20) / 2;
  }
  for (auto& row : n) {
    for (double& x : row) x = static_cast<double>(rng() % 20) / 2;
  }
  PipelineChecker checker(src.str(),
                          {{"M", DoubleMatrix(m)}, {"N", DoubleMatrix(n)}});
  checker.ExpectArrayAgrees("R", 1e-6);
  checker.ExpectArrayAgrees("rowsum", 1e-6);
}

TEST_P(PropertyTest, RandomArgminProgramsAgree) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 911 + 17);
  // Per-key argmin over a random scoring expression — ties are broken
  // identically (left/first) by the reference, the local algebra and
  // the engine's combine order, but we avoid them anyway by offsetting
  // scores with the unique index.
  std::ostringstream src;
  src << "var best: vector[(double,int)] = vector();\n";
  src << "for i = 0, 19 do\n";
  src << "  best[K[i]] argmin= (" << RandomScalarExpr(rng, "V[i]")
      << " + 0.001 * i, i);\n";
  PipelineChecker checker(src.str(), RandomInputs(rng, 20));
  checker.ExpectArrayAgrees("best", 1e-9);
}

TEST_P(PropertyTest, RandomRecurrencesAreRejected) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 271 + 11);
  // Families of Definition 3.1 violations, randomized over shifts and
  // operators. Every instance must be rejected at compile time.
  std::ostringstream src;
  int shift = 1 + static_cast<int>(rng() % 3);
  switch (rng() % 4) {
    case 0:  // read-write recurrence on one array
      src << "for i = " << shift << ", 15 do V[i] := V[i - " << shift
          << "] + 1.0;\n";
      break;
    case 1:  // non-affine scalar write in a loop
      src << "for i = 0, 9 do { t := V[i]; W[i] := t; }\n";
      break;
    case 2:  // swap (bubble-sort shape)
      src << "for i = 0, 8 do { V[i] := V[i + " << shift
          << "]; V[i + " << shift << "] := V[i]; }\n";
      break;
    default:  // non-covering destination: j missing from the indexes
      src << "for i = 0, 5 do for j = 0, 5 do V[i] := M[i,j];\n";
      break;
  }
  auto compiled = Compile(src.str());
  ASSERT_FALSE(compiled.ok()) << src.str();
  EXPECT_EQ(compiled.status().code(), StatusCode::kRestrictionViolation)
      << compiled.status().ToString();
  // Diagnostics carry a source location.
  EXPECT_NE(compiled.status().message().find("line"), std::string::npos)
      << compiled.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace diablo::testing
