// Unit tests for the sequential reference interpreter — the ground-truth
// semantics (Figure 4): lifted missing-element behaviour, update forms,
// loops, records and builtins.

#include "exec/reference_interpreter.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "runtime/operators.h"

namespace diablo::exec {
namespace {

using runtime::Value;
using runtime::ValueVec;

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }

Value Vec(std::vector<double> vals) {
  ValueVec rows;
  for (size_t i = 0; i < vals.size(); ++i) {
    rows.push_back(Value::MakePair(I(static_cast<int64_t>(i)), D(vals[i])));
  }
  return Value::MakeBag(std::move(rows));
}

ReferenceInterpreter MustRun(const std::string& src,
                             ReferenceInterpreter::Bindings inputs) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  ReferenceInterpreter interp;
  Status st = interp.Run(*p, inputs);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return interp;
}

TEST(Reference, ScalarArithmeticAndWhile) {
  auto interp = MustRun(R"(
    var n: int = 1;
    while (n < 100)
      n := n * 2;
  )", {});
  EXPECT_EQ(interp.GetScalar("n")->AsInt(), 128);
}

TEST(Reference, ForRangeInclusive) {
  auto interp = MustRun(R"(
    var s: int = 0;
    for i = 1, 10 do
      s += i;
  )", {});
  EXPECT_EQ(interp.GetScalar("s")->AsInt(), 55);
}

TEST(Reference, EmptyRangeRunsZeroTimes) {
  auto interp = MustRun(R"(
    var s: int = 0;
    for i = 5, 4 do
      s += 1;
  )", {});
  EXPECT_EQ(interp.GetScalar("s")->AsInt(), 0);
}

TEST(Reference, MissingElementSkipsStatement) {
  // V has no index 7: the read lifts to the empty bag and the assignment
  // does nothing.
  auto interp = MustRun(R"(
    var x: double = -1.0;
    x := V[7];
    y := V[1];
  )", {{"V", Vec({10, 11})}, {"y", D(0)}});
  EXPECT_DOUBLE_EQ(interp.GetScalar("x")->AsDouble(), -1.0);
  EXPECT_DOUBLE_EQ(interp.GetScalar("y")->AsDouble(), 11.0);
}

TEST(Reference, MissingConditionSkipsBothBranches) {
  auto interp = MustRun(R"(
    var x: int = 0;
    if (V[9] < 5.0) x := 1; else x := 2;
  )", {{"V", Vec({1})}});
  EXPECT_EQ(interp.GetScalar("x")->AsInt(), 0);
}

TEST(Reference, IncrementOnMissingUsesIdentity) {
  auto interp = MustRun(R"(
    var C: map[int,int] = map();
    C[5] += 3;
    C[5] += 4;
    var M: map[int,int] = map();
    M[1] *= 5;
  )", {});
  Value c = *interp.GetArray("C");
  ASSERT_EQ(c.bag().size(), 1u);
  EXPECT_EQ(c.bag()[0].tuple()[1].AsInt(), 7);
  // Multiplicative identity is 1.
  Value m = *interp.GetArray("M");
  EXPECT_EQ(m.bag()[0].tuple()[1].AsInt(), 5);
}

TEST(Reference, ArrayWriteCreatesAndOverwrites) {
  auto interp = MustRun(R"(
    var V: vector[double] = vector();
    V[0] := 1.0;
    V[0] := 2.0;
    V[3] := 9.0;
  )", {});
  Value v = *interp.GetArray("V");
  ASSERT_EQ(v.bag().size(), 2u);
  EXPECT_DOUBLE_EQ(v.bag()[0].tuple()[1].AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(v.bag()[1].tuple()[1].AsDouble(), 9.0);
}

TEST(Reference, MatrixIndexing) {
  auto interp = MustRun(R"(
    var M: matrix[double] = matrix();
    for i = 0, 1 do
      for j = 0, 1 do
        M[i,j] := i * 10.0 + j;
    x := M[1,0];
  )", {{"x", D(0)}});
  EXPECT_DOUBLE_EQ(interp.GetScalar("x")->AsDouble(), 10.0);
  EXPECT_EQ(interp.GetArray("M")->bag().size(), 4u);
}

TEST(Reference, ForEachBindsValues) {
  auto interp = MustRun(R"(
    var s: double = 0.0;
    for v in V do s += v;
  )", {{"V", Vec({1, 2, 3.5})}});
  EXPECT_DOUBLE_EQ(interp.GetScalar("s")->AsDouble(), 6.5);
}

TEST(Reference, LoopVariableShadowingIsRestored) {
  auto interp = MustRun(R"(
    var i: int = 99;
    var s: int = 0;
    for i = 0, 3 do s += i;
    t := i;
  )", {{"t", I(0)}});
  EXPECT_EQ(interp.GetScalar("t")->AsInt(), 99);
}

TEST(Reference, RecordsAndProjections) {
  ValueVec rows;
  rows.push_back(Value::MakePair(
      I(0), Value::MakeRecord({{"K", I(3)}, {"V", D(10)}})));
  rows.push_back(Value::MakePair(
      I(1), Value::MakeRecord({{"K", I(3)}, {"V", D(13)}})));
  auto interp = MustRun(R"(
    var C: map[int,double] = map();
    for a in A do C[a.K] += a.V;
  )", {{"A", Value::MakeBag(rows)}});
  Value c = *interp.GetArray("C");
  ASSERT_EQ(c.bag().size(), 1u);
  EXPECT_DOUBLE_EQ(c.bag()[0].tuple()[1].AsDouble(), 23.0);
}

TEST(Reference, TupleProjectionsAndFieldUpdate) {
  auto interp = MustRun(R"(
    var t: (int, double) = (1, 2.5);
    t._1 := 7;
    t._2 += 0.5;
  )", {});
  Value t = *interp.GetScalar("t");
  EXPECT_EQ(t.tuple()[0].AsInt(), 7);
  EXPECT_DOUBLE_EQ(t.tuple()[1].AsDouble(), 3.0);
}

TEST(Reference, Builtins) {
  auto interp = MustRun(R"(
    var a: double = 0.0;
    a := sqrt(16.0) + abs(0.0-2.0) + pow(2.0, 3.0) + floor(1.9);
  )", {});
  EXPECT_DOUBLE_EQ(interp.GetScalar("a")->AsDouble(), 4 + 2 + 8 + 1);
}

TEST(Reference, ErrorsOnUndefinedVariable) {
  auto p = parser::ParseProgram("x := y + 1;");
  ASSERT_TRUE(p.ok());
  ReferenceInterpreter interp;
  Status st = interp.Run(*p, {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("'y'"), std::string::npos);
}

TEST(Reference, ErrorsOnBadInputArray) {
  auto p = parser::ParseProgram("var s: int = 0;");
  ASSERT_TRUE(p.ok());
  ReferenceInterpreter interp;
  Status st = interp.Run(*p, {{"V", Value::MakeBag({I(3)})}});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(Reference, WholeArrayAssignmentCopies) {
  auto interp = MustRun(R"(
    var W: vector[double] = vector();
    W := V;
    W[0] := 42.0;
  )", {{"V", Vec({1, 2})}});
  // V unchanged, W updated.
  EXPECT_DOUBLE_EQ(
      interp.GetArray("V")->bag()[0].tuple()[1].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(
      interp.GetArray("W")->bag()[0].tuple()[1].AsDouble(), 42.0);
}

}  // namespace
}  // namespace diablo::exec
