// Tests for the local algebra evaluator — the direct implementation of
// the §3.3 comprehension semantics — including the three-way agreement
// property: reference interpreter == local algebra == distributed plan
// on every benchmark program.

#include "algebra/local.h"

#include <gtest/gtest.h>

#include "normalize/normalize.h"
#include "opt/optimize.h"
#include "tests/test_util.h"
#include "workloads/programs.h"

namespace diablo::algebra {
namespace {

using comp::MakeBag;
using comp::MakeBin;
using comp::MakeComp;
using comp::MakeInt;
using comp::MakeRange;
using comp::MakeReduce;
using comp::MakeTuple;
using comp::MakeVar;
using comp::Pattern;
using comp::Qualifier;
using runtime::BinOp;
using runtime::Value;
using runtime::ValueVec;
using testing::Bag;
using testing::IV;
using testing::Pair;

std::map<std::string, Value> NoGlobals() { return {}; }

TEST(LocalComprehension, GeneratorFlatMaps) {
  // { i * i | i <- range(1,4) } = {1,4,9,16}.
  comp::CompPtr c = MakeComp(
      MakeBin(BinOp::kMul, MakeVar("i"), MakeVar("i")),
      {Qualifier::Generator(Pattern::Var("i"),
                            MakeRange(MakeInt(1), MakeInt(4)))});
  auto out = EvalComprehension(c, {}, NoGlobals());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->ToString(), "{1,4,9,16}");
}

TEST(LocalComprehension, ConditionsFilter) {
  comp::CompPtr c = MakeComp(
      MakeVar("i"),
      {Qualifier::Generator(Pattern::Var("i"),
                            MakeRange(MakeInt(0), MakeInt(9))),
       Qualifier::Condition(
           MakeBin(BinOp::kEq,
                   MakeBin(BinOp::kMod, MakeVar("i"), MakeInt(3)),
                   MakeInt(0)))});
  auto out = EvalComprehension(c, {}, NoGlobals());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->ToString(), "{0,3,6,9}");
}

TEST(LocalComprehension, GroupByLiftsVariables) {
  // The paper's introduction: { (k, +/v) | (i,k,v) <- A, group by k : k }.
  ValueVec rows = {
      Value::MakeTuple({IV(3), IV(3), IV(10)}),
      Value::MakeTuple({IV(8), IV(5), IV(25)}),
      Value::MakeTuple({IV(5), IV(3), IV(13)}),
  };
  std::map<std::string, Value> globals{{"A", Value::MakeBag(rows)}};
  comp::CompPtr c = MakeComp(
      MakeTuple({MakeVar("k"), MakeReduce(BinOp::kAdd, MakeVar("v"))}),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("k"),
                           Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeVar("k"))});
  auto out = EvalComprehension(c, {}, NoGlobals().empty() ? globals : globals);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // C(3)=23, C(5)=25 — the paper's expected output.
  ValueVec result = out->bag();
  std::sort(result.begin(), result.end());
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].ToString(), "(3,23)");
  EXPECT_EQ(result[1].ToString(), "(5,25)");
}

TEST(LocalComprehension, GroupByLiftingSeesOnlyGroupMembers) {
  // { (k, +/v, max/i) | (i,v) <- A, group by k : i % 2 }.
  std::map<std::string, Value> globals{
      {"A", Bag({Pair(IV(1), IV(10)), Pair(IV(2), IV(20)),
                 Pair(IV(3), IV(30)), Pair(IV(4), IV(40))})}};
  comp::CompPtr c = MakeComp(
      MakeTuple({MakeVar("k"), MakeReduce(BinOp::kAdd, MakeVar("v")),
                 MakeReduce(BinOp::kMax, MakeVar("i"))}),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"),
                          MakeBin(BinOp::kMod, MakeVar("i"), MakeInt(2)))});
  auto out = EvalComprehension(c, {}, globals);
  ASSERT_TRUE(out.ok());
  ValueVec result = out->bag();
  std::sort(result.begin(), result.end());
  EXPECT_EQ(result[0].ToString(), "(0,60,4)");  // evens: 20+40, max i 4
  EXPECT_EQ(result[1].ToString(), "(1,40,3)");  // odds: 10+30, max i 3
}

TEST(LocalComprehension, NestedComprehensionsRecurse) {
  // { +/{ j | j <- range(1,i) } | i <- range(1,3) } = {1,3,6}.
  comp::CompPtr inner = MakeComp(
      MakeVar("j"), {Qualifier::Generator(
                        Pattern::Var("j"),
                        MakeRange(MakeInt(1), MakeVar("i")))});
  comp::CompPtr outer = MakeComp(
      MakeReduce(BinOp::kAdd, comp::MakeNested(inner)),
      {Qualifier::Generator(Pattern::Var("i"),
                            MakeRange(MakeInt(1), MakeInt(3)))});
  auto out = EvalComprehension(outer, {}, NoGlobals());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->ToString(), "{1,3,6}");
}

TEST(LocalComprehension, QualifiersAfterGroupByRun) {
  // { k | (i,v) <- A, group by k : v, k > 5 }.
  std::map<std::string, Value> globals{
      {"A", Bag({Pair(IV(0), IV(3)), Pair(IV(1), IV(9)),
                 Pair(IV(2), IV(9))})}};
  comp::CompPtr c = MakeComp(
      MakeVar("k"),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeVar("v")),
       Qualifier::Condition(MakeBin(BinOp::kGt, MakeVar("k"), MakeInt(5)))});
  auto out = EvalComprehension(c, {}, globals);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->ToString(), "{9}");
}

// ------------- rewrite soundness on random comprehensions -------------------

/// Builds a random flat comprehension over the global arrays A (vector of
/// ints) and B (vector of ints), with optional join condition, lets,
/// filters and a final group-by.
comp::CompPtr RandomComprehension(std::mt19937_64& rng) {
  std::vector<Qualifier> quals;
  quals.push_back(Qualifier::Generator(
      Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}), MakeVar("A")));
  bool with_b = rng() % 2 == 0;
  if (with_b) {
    quals.push_back(Qualifier::Generator(
        Pattern::Tuple({Pattern::Var("j"), Pattern::Var("w")}),
        MakeVar("B")));
    quals.push_back(Qualifier::Condition(
        MakeBin(BinOp::kEq, MakeVar("j"), MakeVar("i"))));
  }
  if (rng() % 2 == 0) {
    quals.push_back(Qualifier::Condition(MakeBin(
        BinOp::kLt, MakeVar("v"), MakeInt(static_cast<int64_t>(rng() % 40)))));
  }
  quals.push_back(Qualifier::Let(
      Pattern::Var("x"),
      MakeBin(rng() % 2 == 0 ? BinOp::kAdd : BinOp::kMul, MakeVar("v"),
              MakeInt(1 + static_cast<int64_t>(rng() % 3)))));
  comp::CExprPtr head;
  if (rng() % 2 == 0) {
    quals.push_back(Qualifier::GroupBy(
        Pattern::Var("k"),
        MakeBin(BinOp::kMod, MakeVar("i"),
                MakeInt(2 + static_cast<int64_t>(rng() % 3)))));
    head = MakeTuple({MakeVar("k"), MakeReduce(BinOp::kAdd, MakeVar("x"))});
  } else {
    head = MakeTuple({MakeVar("i"), MakeVar("x")});
  }
  return MakeComp(head, std::move(quals));
}

class RewriteSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(RewriteSoundnessTest, NormalizeAndOptimizePreserveLocalSemantics) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7907 + 23);
  ValueVec a_rows, b_rows;
  for (int64_t i = 0; i < 24; ++i) {
    a_rows.push_back(Pair(IV(i), IV(static_cast<int64_t>(rng() % 50))));
    if (i % 2 == 0) {
      b_rows.push_back(Pair(IV(i), IV(static_cast<int64_t>(rng() % 50))));
    }
  }
  std::map<std::string, Value> globals{{"A", Bag(a_rows)},
                                       {"B", Bag(b_rows)}};
  for (int trial = 0; trial < 10; ++trial) {
    comp::CompPtr original = RandomComprehension(rng);
    auto before = EvalComprehension(original, {}, globals);
    ASSERT_TRUE(before.ok()) << original->ToString() << "\n"
                             << before.status().ToString();
    comp::NameGen names("t");
    comp::CExprPtr rewritten = opt::OptimizeExpr(
        normalize::NormalizeExpr(comp::MakeNested(original), &names),
        &names);
    auto after = EvalExpr(rewritten, {}, globals);
    ASSERT_TRUE(after.ok()) << rewritten->ToString() << "\n"
                            << after.status().ToString();
    EXPECT_TRUE(runtime::BagEquals(*after, *before))
        << "original: " << original->ToString()
        << "\nrewritten: " << rewritten->ToString()
        << "\nbefore: " << before->ToString()
        << "\nafter: " << after->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteSoundnessTest,
                         ::testing::Range(0, 10));

// ---------------------- three-way agreement --------------------------------

class ThreeWayAgreementTest : public ::testing::TestWithParam<std::string> {};

int64_t SmallScale(const std::string& name) {
  if (name == "matrix_addition") return 8;
  if (name == "matrix_multiplication") return 6;
  if (name == "pagerank") return 4;
  if (name == "kmeans") return 50;
  if (name == "matrix_factorization") return 8;
  return 120;
}

TEST_P(ThreeWayAgreementTest, LocalAlgebraMatchesReferenceAndDistributed) {
  const bench::ProgramSpec& spec = bench::GetProgram(GetParam());
  std::mt19937_64 rng(99);
  Bindings inputs = spec.make_inputs(SmallScale(spec.name), rng);

  auto compiled = Compile(spec.source);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  LocalExecutor local;
  Status st = local.Run(compiled->target, inputs);
  ASSERT_TRUE(st.ok()) << st.ToString();

  auto reference = RunReference(spec.source, inputs);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  runtime::Engine engine;
  auto distributed = ::diablo::Run(*compiled, &engine, inputs);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  for (const std::string& name : spec.scalar_outputs) {
    auto l = local.GetScalar(name);
    ASSERT_TRUE(l.ok()) << name << ": " << l.status().ToString();
    auto r = (*reference)->GetScalar(name);
    ASSERT_TRUE(r.ok());
    auto d = distributed->Scalar(name);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(runtime::AlmostEquals(*l, *r, spec.tolerance))
        << name << " local=" << l->ToString() << " ref=" << r->ToString();
    EXPECT_TRUE(runtime::AlmostEquals(*l, *d, spec.tolerance)) << name;
  }
  for (const std::string& name : spec.array_outputs) {
    auto l = local.GetArray(name);
    ASSERT_TRUE(l.ok()) << name << ": " << l.status().ToString();
    auto r = (*reference)->GetArray(name);
    ASSERT_TRUE(r.ok());
    auto d = distributed->Array(name);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(runtime::BagAlmostEquals(*l, *r, spec.tolerance))
        << name << " local=" << l->ToString() << "\nref=" << r->ToString();
    EXPECT_TRUE(runtime::BagAlmostEquals(*l, *d, spec.tolerance)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, ThreeWayAgreementTest,
    ::testing::Values("conditional_sum", "equal", "string_match",
                      "word_count", "histogram", "linear_regression",
                      "group_by", "matrix_addition", "matrix_multiplication",
                      "pagerank", "kmeans", "matrix_factorization"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace diablo::algebra
