// The abstract-interpretation pass (interval/constant/sign facts,
// D201/D202 proven semantic errors) and the merge-operator algebra
// checker (D203). Every reported witness is replayed through the
// reference interpreter or runtime::EvalBinOp — the same no-claim-
// without-ground-truth discipline loop_lint's race witnesses follow —
// and a randomized soundness sweep checks that interval facts cover the
// values the interpreter actually observes and that D2xx never fires on
// a program the interpreter executes successfully.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/absint.h"
#include "analysis/diagnostics.h"
#include "analysis/merge_algebra.h"
#include "analysis/restrictions.h"
#include "exec/reference_interpreter.h"
#include "parser/parser.h"
#include "runtime/operators.h"
#include "workloads/programs.h"

namespace diablo::analysis {
namespace {

using runtime::BinOp;
using runtime::Value;

ast::Program Parse(const std::string& src) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return CanonicalizeIncrements(*p);
}

AbsintResult Analyze(const std::string& src) {
  return AnalyzeProgram(Parse(src));
}

const Diagnostic* FindCode(const std::vector<Diagnostic>& diags,
                           const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

bool HasD2xx(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.code.size() == 4 && d.code[0] == 'D' && d.code[1] == '2') {
      return true;
    }
  }
  return false;
}

/// Evaluates an integer expression with the reference interpreter under
/// the witness iteration's variable bindings — the ground truth that a
/// reported witness element/divisor is what the program really computes.
int64_t RefEval(const std::string& expr,
                const std::vector<std::pair<std::string, int64_t>>& env) {
  auto p = parser::ParseProgram("var out: int = " + expr + ";");
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  exec::ReferenceInterpreter interp;
  exec::ReferenceInterpreter::Bindings inputs;
  for (const auto& [var, val] : env) inputs[var] = Value::MakeInt(val);
  Status st = interp.Run(*p, inputs);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto out = interp.GetScalar("out");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out->AsInt();
}

/// Runs `src` with no host inputs and returns the interpreter's status.
Status RunReference(const std::string& src,
                    exec::ReferenceInterpreter* interp) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return interp->Run(*p, {});
}

// ------------------------- interval lattice --------------------------------

TEST(Interval, JoinAndContains) {
  Interval a = Interval::Of(1, 3);
  Interval b = Interval::Of(5, 7);
  EXPECT_EQ(JoinI(a, b), Interval::Of(1, 7));
  EXPECT_EQ(JoinI(a, Interval::Top()), Interval::Top());
  EXPECT_TRUE(Interval::Of(1, 7).Contains(5));
  EXPECT_FALSE(Interval::Of(1, 7).Contains(0));
  EXPECT_TRUE(Interval::Top().Contains(INT64_MIN));
}

TEST(Interval, SignProjections) {
  EXPECT_TRUE(Interval::Of(0, 9).IsNonNegative());
  EXPECT_TRUE(Interval::Of(-5, -2).IsNegative());
  EXPECT_FALSE(Interval::Of(-1, 0).IsNegative());
  EXPECT_TRUE(Interval::Const(0).IsZero());
  EXPECT_FALSE(Interval::Of(0, 1).IsZero());
  EXPECT_TRUE(Interval::Const(3).IsConst());
}

TEST(Interval, WideningJumpsGrowingBoundsToInfinity) {
  Interval prev = Interval::Of(0, 4);
  EXPECT_EQ(WidenI(prev, Interval::Of(0, 4)), Interval::Of(0, 4));
  Interval grew_hi = WidenI(prev, Interval::Of(0, 5));
  EXPECT_EQ(grew_hi.lo, 0);
  EXPECT_EQ(grew_hi.hi, Interval::kPosInf);
  Interval grew_lo = WidenI(prev, Interval::Of(-1, 4));
  EXPECT_EQ(grew_lo.lo, Interval::kNegInf);
  EXPECT_EQ(grew_lo.hi, 4);
}

TEST(Interval, SaturatingArithmetic) {
  EXPECT_EQ(AddI(Interval::Of(1, 2), Interval::Of(10, 20)),
            Interval::Of(11, 22));
  EXPECT_EQ(SubI(Interval::Of(0, 3), Interval::Of(0, 3)),
            Interval::Of(-3, 3));
  EXPECT_EQ(MulI(Interval::Of(-2, 3), Interval::Of(4, 5)),
            Interval::Of(-10, 15));
  EXPECT_EQ(MulI(Interval::Const(0), Interval::Top()), Interval::Const(0));
  EXPECT_EQ(NegI(Interval::Of(-5, -2)), Interval::Of(2, 5));
  EXPECT_EQ(MinI(Interval::Of(0, 9), Interval::Of(4, 20)),
            Interval::Of(0, 9));
  EXPECT_EQ(MaxI(Interval::Of(0, 9), Interval::Of(4, 20)),
            Interval::Of(4, 20));
  // A bound at an extreme stays infinite instead of wrapping.
  Interval big = AddI(Interval::Of(0, Interval::kPosInf), Interval::Const(1));
  EXPECT_EQ(big.hi, Interval::kPosInf);
  EXPECT_EQ(big.lo, 1);
}

TEST(Interval, ToStringForms) {
  EXPECT_EQ(Interval::Const(3).ToString(), "{3}");
  EXPECT_EQ(Interval::Of(0, 9).ToString(), "[0,9]");
  EXPECT_EQ(Interval::Of(0, Interval::kPosInf).ToString(), "[0,+inf)");
  EXPECT_EQ(Interval::Top().ToString(), "(-inf,+inf)");
}

// ------------------------- scalar interval facts ---------------------------

TEST(Absint, ConstantPropagationThroughArithmetic) {
  AbsintResult r = Analyze(
      "var n: int = 8;\n"
      "var m: int = n * 2 + 1;\n");
  ASSERT_TRUE(r.int_scalars.count("n"));
  ASSERT_TRUE(r.int_scalars.count("m"));
  EXPECT_EQ(r.int_scalars.at("n"), Interval::Const(8));
  EXPECT_EQ(r.int_scalars.at("m"), Interval::Const(17));
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Absint, BranchJoinWidensToCoveringInterval) {
  // `flag` is a host input, so the branch is not decidable: the fact for
  // `a` must cover both the 0 and the 5 binding.
  AbsintResult r = Analyze(
      "var a: int = 0;\n"
      "if (flag) a := 5;\n");
  ASSERT_TRUE(r.int_scalars.count("a"));
  EXPECT_TRUE(r.int_scalars.at("a").Contains(0));
  EXPECT_TRUE(r.int_scalars.at("a").Contains(5));
}

TEST(Absint, LoopIndexGetsRangeInterval) {
  AbsintResult r = Analyze(
      "var s: int = 0;\n"
      "for i = 2, 9 do\n"
      "  s := i;\n");
  ASSERT_TRUE(r.int_scalars.count("i"));
  const Interval& i = r.int_scalars.at("i");
  EXPECT_TRUE(i.Contains(2));
  EXPECT_TRUE(i.Contains(9));
  const Interval& s = r.int_scalars.at("s");
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(9));
}

// ------------------------- D201: out-of-bounds write -----------------------

constexpr const char kOobWrite[] = R"(
var V: vector[double] = vector();
for i = 0, 3 do
  V[i - 5] := 1.0 * i;
)";

TEST(Absint, OobWriteReportsWitness) {
  AbsintResult r = Analyze(kOobWrite);
  const Diagnostic* d = FindCode(r.diagnostics, diag::kOutOfBoundsWrite);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ASSERT_TRUE(d->witness.has_value());
  const Witness& w = *d->witness;
  EXPECT_EQ(w.kind, "oob-write");
  EXPECT_EQ(w.array, "V");
  ASSERT_EQ(w.element.size(), 1u);
  EXPECT_EQ(w.element[0], -5);
  ASSERT_EQ(w.write_iteration.size(), 1u);
  EXPECT_EQ(w.write_iteration[0].first, "i");
  EXPECT_EQ(w.write_iteration[0].second, 0);
  EXPECT_EQ(w.ToString(), "write at i=0 touches V[-5]");
}

TEST(Absint, OobWitnessConfirmedByReferenceInterpreter) {
  AbsintResult r = Analyze(kOobWrite);
  const Diagnostic* d = FindCode(r.diagnostics, diag::kOutOfBoundsWrite);
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->witness.has_value());
  // The subscript under the witness iteration is the witness element,
  // and it is genuinely out of bounds (negative for a dense vector).
  int64_t elem = RefEval("i - 5", d->witness->write_iteration);
  EXPECT_EQ(elem, d->witness->element[0]);
  EXPECT_LT(elem, 0);
  // And the interpreter itself faults on the program: the diagnostic
  // claims a proven error, so ground truth must agree.
  exec::ReferenceInterpreter interp;
  Status st = RunReference(kOobWrite, &interp);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("out-of-bounds"), std::string::npos)
      << st.ToString();
}

TEST(Absint, InBoundsWriteIsClean) {
  const std::string src =
      "var V: vector[double] = vector();\n"
      "for i = 0, 3 do\n"
      "  V[i + 1] := 1.0 * i;\n";
  AbsintResult r = Analyze(src);
  EXPECT_FALSE(HasD2xx(r.diagnostics));
  exec::ReferenceInterpreter interp;
  EXPECT_TRUE(RunReference(src, &interp).ok());
}

TEST(Absint, PossiblyNegativeSubscriptDoesNotFire) {
  // i - 2 has interval [-2, 1]: not *provably* negative, so no D201.
  AbsintResult r = Analyze(
      "var V: vector[double] = vector();\n"
      "for i = 0, 3 do\n"
      "  V[i - 2] := 1.0 * i;\n");
  EXPECT_FALSE(HasD2xx(r.diagnostics));
}

// ------------------------- D202: provably-zero divisor ---------------------

TEST(Absint, ZeroDivisorConstant) {
  const std::string src =
      "var d: int = 0;\n"
      "var x: int = 10 / d;\n";
  AbsintResult r = Analyze(src);
  const Diagnostic* diag = FindCode(r.diagnostics, diag::kZeroDivisor);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->witness.has_value());
  EXPECT_EQ(diag->witness->kind, "zero-divisor");
  exec::ReferenceInterpreter interp;
  Status st = RunReference(src, &interp);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("division by zero"), std::string::npos)
      << st.ToString();
}

TEST(Absint, ZeroDivisorInLoopWitnessConfirmed) {
  const std::string src =
      "var t: int = 0;\n"
      "for i = 0, 3 do\n"
      "  t := 10 / (i * 0);\n";
  AbsintResult r = Analyze(src);
  const Diagnostic* d = FindCode(r.diagnostics, diag::kZeroDivisor);
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->witness.has_value());
  // The divisor expression evaluates to zero under the witness bindings.
  EXPECT_EQ(RefEval("i * 0", d->witness->write_iteration), 0);
  exec::ReferenceInterpreter interp;
  Status st = RunReference(src, &interp);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("division by zero"), std::string::npos);
}

TEST(Absint, PossiblyZeroDivisorDoesNotFire) {
  // The divisor interval [0, 3] contains nonzero values: no proof.
  AbsintResult r = Analyze(
      "var t: int = 0;\n"
      "for i = 0, 3 do\n"
      "  t := 10 / (i + 1);\n");
  EXPECT_FALSE(HasD2xx(r.diagnostics));
}

// ------------------------- merge-operator algebra --------------------------

TEST(MergeAlgebra, CommutativeMonoidsAreProven) {
  for (BinOp op : {BinOp::kAdd, BinOp::kMul, BinOp::kMin, BinOp::kMax,
                   BinOp::kAnd, BinOp::kOr}) {
    OpAlgebra a = CheckOperatorAlgebra(op);
    EXPECT_TRUE(a.IsProvenMonoid()) << runtime::BinOpName(op);
    EXPECT_FALSE(a.assoc_counterexample.has_value());
  }
}

TEST(MergeAlgebra, SubtractionRefutedWithValidCounterexample) {
  OpAlgebra a = CheckOperatorAlgebra(BinOp::kSub);
  EXPECT_EQ(a.associative, AlgebraVerdict::kRefuted);
  EXPECT_EQ(a.commutative, AlgebraVerdict::kRefuted);
  ASSERT_TRUE(a.assoc_counterexample.has_value());
  auto [x, y, z] = *a.assoc_counterexample;
  // Replay through the same evaluator the interpreter uses: the triple
  // must genuinely break associativity.
  auto lhs = runtime::EvalBinOp(
      BinOp::kSub, *runtime::EvalBinOp(BinOp::kSub, Value::MakeInt(x),
                                       Value::MakeInt(y)),
      Value::MakeInt(z));
  auto rhs = runtime::EvalBinOp(
      BinOp::kSub, Value::MakeInt(x),
      *runtime::EvalBinOp(BinOp::kSub, Value::MakeInt(y),
                          Value::MakeInt(z)));
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  EXPECT_NE(lhs->Compare(*rhs), 0);
  // RefEval agrees (interpreter-level ground truth).
  std::vector<std::pair<std::string, int64_t>> env = {
      {"a", x}, {"b", y}, {"c", z}};
  EXPECT_NE(RefEval("(a - b) - c", env), RefEval("a - (b - c)", env));
}

TEST(MergeAlgebra, DivisionAndModuloRefuted) {
  EXPECT_EQ(CheckOperatorAlgebra(BinOp::kDiv).associative,
            AlgebraVerdict::kRefuted);
  EXPECT_EQ(CheckOperatorAlgebra(BinOp::kMod).associative,
            AlgebraVerdict::kRefuted);
}

constexpr const char kNonAssocMerge[] = R"(
var acc: double = 100.0;
for i = 0, 7 do
  acc := acc - V[i];
)";

TEST(MergeAlgebra, NonAssocSelfMergeReportsD203) {
  std::vector<Diagnostic> diags = LintMergeOperators(Parse(kNonAssocMerge));
  const Diagnostic* d = FindCode(diags, diag::kNonAssociativeMerge);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ASSERT_TRUE(d->witness.has_value());
  const Witness& w = *d->witness;
  EXPECT_EQ(w.kind, "nonassoc");
  EXPECT_EQ(w.array, "-");
  ASSERT_EQ(w.write_iteration.size(), 3u);
  // The counterexample in the witness breaks associativity for real.
  std::vector<std::pair<std::string, int64_t>> env(
      w.write_iteration.begin(), w.write_iteration.end());
  EXPECT_NE(RefEval("(a - b) - c", env), RefEval("a - (b - c)", env));
}

TEST(MergeAlgebra, CommutativeSelfMergeIsClean) {
  std::vector<Diagnostic> diags = LintMergeOperators(Parse(
      "var acc: double = 0.0;\n"
      "for i = 0, 7 do\n"
      "  acc := acc + V[i];\n"));
  EXPECT_EQ(FindCode(diags, diag::kNonAssociativeMerge), nullptr);
}

TEST(MergeAlgebra, SequentialWhileBodyIsExempt) {
  // While-loops run sequentially; a non-associative accumulation there
  // is not translated to a parallel reduction.
  std::vector<Diagnostic> diags = LintMergeOperators(Parse(
      "var acc: double = 100.0;\n"
      "var k: int = 0;\n"
      "while (k < 3) {\n"
      "  acc := acc - 1.0;\n"
      "  k += 1;\n"
      "}\n"));
  EXPECT_EQ(FindCode(diags, diag::kNonAssociativeMerge), nullptr);
}

// ------------------------- no false positives ------------------------------

TEST(Absint, NoD2xxOnAnyBenchmarkProgram) {
  for (const auto& spec : bench::BenchmarkPrograms()) {
    ast::Program p = Parse(spec.source);
    AbsintResult r = AnalyzeProgram(p);
    EXPECT_FALSE(HasD2xx(r.diagnostics)) << spec.name;
    EXPECT_FALSE(HasD2xx(LintMergeOperators(p))) << spec.name;
  }
  for (const auto& entry : bench::Table1Programs()) {
    ast::Program p = Parse(entry.source);
    AbsintResult r = AnalyzeProgram(p);
    EXPECT_FALSE(HasD2xx(r.diagnostics)) << entry.name;
    EXPECT_FALSE(HasD2xx(LintMergeOperators(p))) << entry.name;
  }
}

// ------------------------- randomized soundness ----------------------------

/// A small random straight-line/loop program over int scalars a, b and a
/// dense vector V. Subscript offsets may be negative, so some programs
/// fault in the interpreter — exactly the split the soundness property
/// needs: D2xx may fire only on the faulting ones.
std::string RandomProgram(std::mt19937_64& rng) {
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % (hi - lo + 1));
  };
  std::ostringstream os;
  os << "var a: int = " << pick(-3, 3) << ";\n";
  os << "var b: int = " << pick(-3, 3) << ";\n";
  os << "var V: vector[double] = vector();\n";
  int lo = pick(0, 2);
  int hi = lo + pick(0, 4);
  int k = pick(-2, 3);
  os << "for i = " << lo << ", " << hi << " do {\n";
  if (k >= 0) {
    os << "  V[i + " << k << "] := 1.0 * i;\n";
  } else {
    os << "  V[i - " << -k << "] := 1.0 * i;\n";
  }
  switch (pick(0, 3)) {
    case 0:
      os << "  a := b + " << pick(-2, 2) << ";\n";
      break;
    case 1:
      os << "  b := a * 2;\n";
      break;
    case 2:
      os << "  a := i - " << pick(0, 2) << ";\n";
      break;
    default:
      break;
  }
  os << "}\n";
  os << "b := a * " << pick(-2, 2) << ";\n";
  return os.str();
}

TEST(Absint, RandomizedSoundnessSweep) {
  std::mt19937_64 rng(20260808);
  int executed = 0;
  int faulted = 0;
  for (int trial = 0; trial < 80; ++trial) {
    std::string src = RandomProgram(rng);
    SCOPED_TRACE(src);
    ast::Program p = Parse(src);
    AbsintResult r = AnalyzeProgram(p);
    exec::ReferenceInterpreter interp;
    Status st = interp.Run(p, {});
    if (st.ok()) {
      ++executed;
      // Soundness of the error codes: a *proven* error can never fire
      // on a program the interpreter executes successfully.
      EXPECT_FALSE(HasD2xx(r.diagnostics));
      // Soundness of the interval facts: every observed final scalar
      // value lies inside its reported interval (no unsound narrowing).
      for (const char* name : {"a", "b"}) {
        auto v = interp.GetScalar(name);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        ASSERT_TRUE(r.int_scalars.count(name)) << name;
        EXPECT_TRUE(r.int_scalars.at(name).Contains(v->AsInt()))
            << name << " = " << v->AsInt() << " outside "
            << r.int_scalars.at(name).ToString();
      }
    } else {
      ++faulted;
      // When the analysis proves an out-of-bounds write, the program
      // must indeed have faulted on one.
      if (FindCode(r.diagnostics, diag::kOutOfBoundsWrite) != nullptr) {
        EXPECT_NE(st.ToString().find("out-of-bounds"), std::string::npos);
      }
    }
  }
  // The sweep must exercise both sides of the split to mean anything.
  EXPECT_GT(executed, 10);
  EXPECT_GT(faulted, 5);
}

}  // namespace
}  // namespace diablo::analysis
