// Property tests for runtime skew mitigation (DESIGN.md §17): a salted
// run — hot reduce/combine tasks split across sub-tasks, merged back by
// the un-salt step — must be byte-for-byte identical to the unmitigated
// engine across workloads, partition/thread sweeps, columnar and boxed
// execution, fusion, hash aggregation, fault injection, lost-partition
// lineage recovery, and the multi-process distributed backend. Also
// covers the --profile-in feedback loop: a stale profile degrades
// gracefully to the static plan rules.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "diablo/diablo.h"
#include "dist/coordinator.h"
#include "runtime/engine.h"
#include "runtime/profile.h"
#include "runtime/serialize.h"

namespace diablo::runtime {
namespace {

Value I(int64_t v) { return Value::MakeInt(v); }
Value D(double v) { return Value::MakeDouble(v); }
Value S(const std::string& v) { return Value::MakeString(v); }

/// Byte-identity oracle: the serialized codec bytes of every collected
/// row, in collection order.
std::string Bytes(Engine& engine, const Dataset& ds) {
  StatusOr<ValueVec> rows = engine.Collect(ds);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::string out;
  for (const Value& v : *rows) out += Serialize(v);
  return out;
}

/// A zipf-flavored skewed workload: `hot_share` of the rows land on one
/// hot key, the rest spread over `keys` tail keys. Deterministic (no
/// RNG) so every engine variant sees the same input rows in the same
/// order.
ValueVec SkewedRows(int64_t n, int64_t keys, double hot_share) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  auto hot_every = static_cast<int64_t>(1.0 / (1.0 - hot_share));
  for (int64_t i = 0; i < n; ++i) {
    int64_t key = (i % hot_every == 0) ? (i % keys) + 1 : 0;
    rows.push_back(Value::MakePair(I(key), I(i % 1000)));
  }
  return rows;
}

/// Same shape with string keys: exercises the typed string-dictionary
/// shuffle under salting.
ValueVec SkewedStringRows(int64_t n, int64_t keys, double hot_share) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  auto hot_every = static_cast<int64_t>(1.0 / (1.0 - hot_share));
  for (int64_t i = 0; i < n; ++i) {
    int64_t key = (i % hot_every == 0) ? (i % keys) + 1 : 0;
    rows.push_back(
        Value::MakePair(S("key-" + std::to_string(key)), I(i % 1000)));
  }
  return rows;
}

/// Engine config whose skew thresholds are scaled down so test-sized
/// workloads (tens of thousands of rows, not millions) trip the hot-task
/// detector. Everything else stays at the defaults unless a test
/// overrides it.
EngineConfig SkewTestConfig(bool mitigate) {
  EngineConfig config;
  config.skew.mitigate = mitigate;
  config.skew.min_rows = 512;
  return config;
}

struct SkewCase {
  int partitions;
  int threads;
  bool columnar;
  bool fuse;
  bool hash_agg;
};

std::string CaseName(const ::testing::TestParamInfo<SkewCase>& info) {
  const SkewCase& c = info.param;
  std::string name = "p" + std::to_string(c.partitions) + "_t" +
                     std::to_string(c.threads);
  name += c.columnar ? "_columnar" : "_boxed";
  if (!c.fuse) name += "_nofuse";
  if (!c.hash_agg) name += "_nohashagg";
  return name;
}

class SkewMatrixTest : public ::testing::TestWithParam<SkewCase> {
 protected:
  EngineConfig Config(bool mitigate) const {
    EngineConfig config = SkewTestConfig(mitigate);
    config.num_partitions = GetParam().partitions;
    config.host_threads = GetParam().threads;
    config.columnar = GetParam().columnar;
    config.fuse_narrow = GetParam().fuse;
    config.hash_aggregation = GetParam().hash_agg;
    return config;
  }
};

TEST_P(SkewMatrixTest, ReduceByKeyByteIdentical) {
  ValueVec rows = SkewedRows(20000, 64, 0.8);

  Engine plain(Config(/*mitigate=*/false));
  StatusOr<Dataset> expected =
      plain.ReduceByKey(plain.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  std::string want = Bytes(plain, *expected);
  EXPECT_EQ(plain.metrics().total_salt_fanout(), 0);

  Engine salted(Config(/*mitigate=*/true));
  StatusOr<Dataset> got =
      salted.ReduceByKey(salted.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
  // Whether this configuration actually salts depends on how the
  // map-side combine flattens the skew; the counter tests below pin
  // workloads that provably do. Here only byte-identity matters.
}

TEST_P(SkewMatrixTest, GroupByKeyByteIdentical) {
  ValueVec rows = SkewedRows(12000, 32, 0.9);

  Engine plain(Config(/*mitigate=*/false));
  StatusOr<Dataset> expected = plain.GroupByKey(plain.Parallelize(rows));
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  std::string want = Bytes(plain, *expected);

  Engine salted(Config(/*mitigate=*/true));
  StatusOr<Dataset> got = salted.GroupByKey(salted.Parallelize(rows));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
}

TEST_P(SkewMatrixTest, UserReduceFnByteIdentical) {
  // A black-box (non-native) ReduceFn forces the generic reduce path:
  // combine tasks must not chunk-split (the fold is not provably
  // bit-associative), but hash-stripe salting of the reduce wave still
  // applies and must stay exact.
  ValueVec rows = SkewedRows(16000, 48, 0.85);
  auto max_fn = [](const Value& a, const Value& b) -> StatusOr<Value> {
    return a.AsInt() >= b.AsInt() ? a : b;
  };

  Engine plain(Config(/*mitigate=*/false));
  StatusOr<Dataset> expected =
      plain.ReduceByKey(plain.Parallelize(rows), max_fn);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  std::string want = Bytes(plain, *expected);

  Engine salted(Config(/*mitigate=*/true));
  StatusOr<Dataset> got =
      salted.ReduceByKey(salted.Parallelize(rows), max_fn);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
}

TEST_P(SkewMatrixTest, StringKeysByteIdentical) {
  ValueVec rows = SkewedStringRows(15000, 40, 0.8);

  Engine plain(Config(/*mitigate=*/false));
  StatusOr<Dataset> expected =
      plain.ReduceByKey(plain.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  std::string want = Bytes(plain, *expected);

  Engine salted(Config(/*mitigate=*/true));
  StatusOr<Dataset> got =
      salted.ReduceByKey(salted.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
}

TEST_P(SkewMatrixTest, DoublePayloadByteIdentical) {
  // Double payloads are excluded from combine-task chunk splitting (fp
  // addition is not associative); only the exact salting mechanisms may
  // engage, and the result must not drift by one ulp.
  ValueVec rows;
  for (int64_t i = 0; i < 12000; ++i) {
    int64_t key = (i % 5 == 0) ? (i % 30) + 1 : 0;
    rows.push_back(Value::MakePair(I(key), D(0.1 * static_cast<double>(i % 97))));
  }

  Engine plain(Config(/*mitigate=*/false));
  StatusOr<Dataset> expected =
      plain.ReduceByKey(plain.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  std::string want = Bytes(plain, *expected);

  Engine salted(Config(/*mitigate=*/true));
  StatusOr<Dataset> got =
      salted.ReduceByKey(salted.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkewMatrixTest,
    ::testing::Values(SkewCase{1, 1, true, true, true},
                      SkewCase{4, 1, true, true, true},
                      SkewCase{8, 4, true, true, true},
                      SkewCase{8, 4, false, true, true},
                      SkewCase{8, 1, true, false, true},
                      SkewCase{8, 1, true, true, false},
                      SkewCase{5, 2, false, false, false}),
    CaseName);

TEST(SkewFaultTest, FaultInjectionByteIdentical) {
  ValueVec rows = SkewedRows(20000, 64, 0.8);

  Engine clean(SkewTestConfig(/*mitigate=*/false));
  StatusOr<Dataset> expected =
      clean.ReduceByKey(clean.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(expected.ok());
  std::string want = Bytes(clean, *expected);

  EngineConfig faulty = SkewTestConfig(/*mitigate=*/true);
  faulty.faults.seed = 17;
  faulty.faults.task_failure_rate = 0.15;
  Engine engine(faulty);
  StatusOr<Dataset> got =
      engine.ReduceByKey(engine.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(engine, *got), want);
  EXPECT_GT(engine.metrics().total_attempts(),
            clean.metrics().total_attempts());
}

TEST(SkewFaultTest, LostPartitionRecoveryByteIdentical) {
  ValueVec rows = SkewedRows(18000, 50, 0.85);

  Engine clean(SkewTestConfig(/*mitigate=*/false));
  StatusOr<Dataset> expected = clean.GroupByKey(clean.Parallelize(rows));
  ASSERT_TRUE(expected.ok());
  std::string want = Bytes(clean, *expected);

  // Lose input partitions of the first stages: the lineage recompute
  // replays the producer, and the salted reduce wave runs over the
  // rebuilt rows exactly as over the originals.
  EngineConfig faulty = SkewTestConfig(/*mitigate=*/true);
  faulty.faults.lose_partitions.push_back({0, 0, 0});
  faulty.faults.lose_partitions.push_back({1, 1, 0});
  Engine engine(faulty);
  StatusOr<Dataset> got = engine.GroupByKey(engine.Parallelize(rows));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(engine, *got), want);
}

TEST(SkewFaultTest, SerializedShufflesByteIdentical) {
  ValueVec rows = SkewedRows(16000, 64, 0.8);

  Engine plain(SkewTestConfig(/*mitigate=*/false));
  StatusOr<Dataset> expected =
      plain.ReduceByKey(plain.Parallelize(rows), BinOp::kMax);
  ASSERT_TRUE(expected.ok());
  std::string want = Bytes(plain, *expected);

  EngineConfig wire = SkewTestConfig(/*mitigate=*/true);
  wire.serialize_shuffles = true;
  Engine engine(wire);
  StatusOr<Dataset> got =
      engine.ReduceByKey(engine.Parallelize(rows), BinOp::kMax);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(engine, *got), want);
}

TEST(SkewDistTest, DistWorkersWithChaosByteIdentical) {
  ValueVec rows = SkewedRows(16000, 64, 0.8);

  Engine local(SkewTestConfig(/*mitigate=*/false));
  StatusOr<Dataset> expected =
      local.ReduceByKey(local.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(expected.ok());
  std::string want = Bytes(local, *expected);

  dist::DistConfig dist_config;
  dist_config.num_workers = 2;
  dist_config.heartbeat_ms = 50;
  dist_config.chaos.kills.push_back({/*stage=*/1, /*worker=*/0, 0});
  dist::Coordinator coordinator(dist_config);
  EngineConfig config = SkewTestConfig(/*mitigate=*/true);
  config.remote = &coordinator;
  config.dist_lose_on_kill = true;
  Engine engine(config);
  StatusOr<Dataset> got =
      engine.ReduceByKey(engine.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(engine, *got), want);
  EXPECT_GT(engine.metrics().total_dist_tasks(), 0);
}

TEST(SkewCountersTest, GroupByKeyHotKeySalts) {
  // 90% of rows on one key: its destination carries ~10800 of 12000
  // rows against a wave mean of 1500 — far past ratio 4 — so the
  // groupByKey reduce wave must chunk-split, and the hot key's bag is
  // reassembled from several sub-tasks (salted_keys records the folds).
  ValueVec rows = SkewedRows(12000, 32, 0.9);

  Engine plain(SkewTestConfig(/*mitigate=*/false));
  std::string want = Bytes(plain, *plain.GroupByKey(plain.Parallelize(rows)));

  Engine salted(SkewTestConfig(/*mitigate=*/true));
  StatusOr<Dataset> got = salted.GroupByKey(salted.Parallelize(rows));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
  EXPECT_GT(salted.metrics().total_salt_fanout(), 0)
      << salted.metrics().Report();
  EXPECT_GT(salted.metrics().total_salted_keys(), 0);
}

TEST(SkewCountersTest, ReduceByKeyImbalancedPartitionsSplitCombine) {
  // One source partition holds 16k rows, the other seven 200 each: the
  // map-side combine wave is the straggler, and the combine-split
  // mechanism (exact for native int64 +) must split it.
  std::vector<ValueVec> parts(8);
  for (int64_t i = 0; i < 16000; ++i) {
    parts[0].push_back(Value::MakePair(I(i % 50), I(i % 1000)));
  }
  for (int p = 1; p < 8; ++p) {
    for (int64_t i = 0; i < 200; ++i) {
      parts[p].push_back(Value::MakePair(I(i % 50), I(i)));
    }
  }

  // Combine-splitting requires a plan-time-proven int64 fold: pass the
  // schema the planner would have inferred for these rows.
  ColumnSchema schema;
  schema.key = ColumnTag::kInt64;
  schema.value = ColumnTag::kInt64;

  Engine plain(SkewTestConfig(/*mitigate=*/false));
  std::string want = Bytes(
      plain,
      *plain.ReduceByKey(Dataset(parts), BinOp::kAdd, "reduceByKey", schema));

  Engine salted(SkewTestConfig(/*mitigate=*/true));
  StatusOr<Dataset> got =
      salted.ReduceByKey(Dataset(parts), BinOp::kAdd, "reduceByKey", schema);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
  EXPECT_GT(salted.metrics().total_salt_fanout(), 0)
      << salted.metrics().Report();
}

TEST(SkewCountersTest, ReduceByKeyHotDestinationStripes) {
  // Keys picked so they all hash to reduce destination 0 (with 8
  // partitions): every combined row converges on one reduce task, which
  // must hash-stripe into sub-tasks. Distinct keys stay intact under
  // striping, so any ReduceFn is safe; here the native op suffices.
  std::vector<int64_t> hot_keys;
  for (int64_t k = 0; hot_keys.size() < 3000; ++k) {
    if (I(k).Hash() % 8 == 0) hot_keys.push_back(k);
  }
  ValueVec rows;
  for (int rep = 0; rep < 2; ++rep) {
    for (int64_t k : hot_keys) {
      rows.push_back(Value::MakePair(I(k), I(k % 1000)));
    }
  }

  EngineConfig base = SkewTestConfig(/*mitigate=*/false);
  base.num_partitions = 8;
  Engine plain(base);
  std::string want =
      Bytes(plain, *plain.ReduceByKey(plain.Parallelize(rows), BinOp::kAdd));

  EngineConfig cfg = SkewTestConfig(/*mitigate=*/true);
  cfg.num_partitions = 8;
  Engine salted(cfg);
  StatusOr<Dataset> got =
      salted.ReduceByKey(salted.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Bytes(salted, *got), want);
  EXPECT_GT(salted.metrics().total_salt_fanout(), 0)
      << salted.metrics().Report();
}

TEST(SkewCountersTest, SmallWavesNeverSalt) {
  // Default thresholds: tier-1-sized data stays untouched, so existing
  // stage accounting (and every small-data golden) is unchanged.
  EngineConfig config;  // default skew thresholds
  Engine engine(config);
  ValueVec rows = SkewedRows(2000, 16, 0.9);
  StatusOr<Dataset> got =
      engine.ReduceByKey(engine.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok());
  (void)Bytes(engine, *got);
  EXPECT_EQ(engine.metrics().total_salt_fanout(), 0);
  EXPECT_EQ(engine.metrics().total_salted_keys(), 0);
}

TEST(SkewCountersTest, StringKeyShuffleStaysTyped) {
  // The typed string-dictionary shuffle (per-destination re-interning)
  // must keep string-keyed reduceByKey on the columnar path: no stage
  // reports fallback rows.
  EngineConfig config = SkewTestConfig(/*mitigate=*/true);
  Engine engine(config);
  ValueVec rows = SkewedStringRows(15000, 40, 0.8);
  StatusOr<Dataset> got =
      engine.ReduceByKey(engine.Parallelize(rows), BinOp::kAdd);
  ASSERT_TRUE(got.ok());
  (void)Bytes(engine, *got);
  for (const StageStats& s : engine.metrics().stages()) {
    if (s.label.find("reduceByKey") == std::string::npos) continue;
    EXPECT_EQ(s.columnar_rows_fallback, 0)
        << "stage '" << s.label << "' fell back to boxed rows";
  }
}

// ---- profile feedback: graceful degradation on stale profiles ----

constexpr char kJoinProgram[] = R"(
var n: int = 8;
var W: vector[double] = vector();
for i = 0, n - 1 do
  W[i] := 0.5 * i;
var S: vector[double] = vector();
for i = 0, n - 1 do
  S[i] += V[i] * W[i];
)";

Bindings JoinInputs() {
  ValueVec v;
  for (int64_t i = 0; i < 8; ++i) {
    v.push_back(Value::MakePair(I(i), D(static_cast<double>(i) + 0.5)));
  }
  return {{"V", Value::MakeBag(std::move(v))}};
}

TEST(ProfileFeedbackTest, StaleProfileDegradesGracefully) {
  // A profile whose provenance matches nothing (different file, lines):
  // every FindStage lookup misses, all decisions stay static, and the
  // run's bytes are untouched.
  auto profile = ProfileData::Parse(R"({
    "schema_version": 3, "program": "other.diablo",
    "totals": {},
    "stages": [
      {"label": "join[Z]",
       "location": {"file": "other.diablo", "line": 99, "column": 1},
       "map_work": 10, "reduce_work": 10, "shuffle_bytes": 123456,
       "hash_agg_keys": 7}
    ]})");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->FindStage("join.diablo", 7, 3, "join[W]"), nullptr);

  auto compiled = Compile(kJoinProgram);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  Engine plain((EngineConfig()));
  auto base = diablo::Run(*compiled, &plain, JoinInputs());
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto base_s = base->Array("S");
  ASSERT_TRUE(base_s.ok());

  Engine fed((EngineConfig()));
  RunOptions options;
  options.profile = &profile.value();
  auto run = diablo::Run(*compiled, &fed, JoinInputs(), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto fed_s = run->Array("S");
  ASSERT_TRUE(fed_s.ok());
  EXPECT_EQ(Serialize(*fed_s), Serialize(*base_s));
  // Stale: not a single profile-fed decision fired.
  EXPECT_EQ(fed.metrics().total_cost_decisions(), 0);
}

TEST(ProfileFeedbackTest, MalformedProfileIsAnError) {
  EXPECT_FALSE(ProfileData::Parse("{not json").ok());
  EXPECT_FALSE(ProfileData::Parse(R"({"schema_version": 3})").ok());
}

TEST(ProfileFeedbackTest, RecommendPartitionsFallsBackWithoutRows) {
  auto empty = ProfileData::Parse(
      R"({"schema_version": 3, "program": "p", "stages": []})");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(RecommendPartitions(*empty, 4, 8), 8);
}

}  // namespace
}  // namespace diablo::runtime
