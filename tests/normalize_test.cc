// Unit tests for the comprehension normalizer: Rule (2) unnesting,
// singleton-generator elimination, let-inlining (with group-by blocking
// and shadowing), condition simplification, and static projections.

#include "normalize/normalize.h"

#include <gtest/gtest.h>

namespace diablo::normalize {
namespace {

using comp::CExpr;
using comp::CExprPtr;
using comp::CompPtr;
using comp::MakeBag;
using comp::MakeBin;
using comp::MakeComp;
using comp::MakeInt;
using comp::MakeNested;
using comp::MakeReduce;
using comp::MakeTuple;
using comp::MakeVar;
using comp::Pattern;
using comp::Qualifier;
using runtime::BinOp;

std::string Normalize(const CExprPtr& e) {
  comp::NameGen names("t");
  return NormalizeExpr(e, &names)->ToString();
}

TEST(Normalize, EmptyQualifiersBecomeBagLiteral) {
  // { h | } = {h}.
  EXPECT_EQ(Normalize(MakeNested(MakeComp(MakeInt(7), {}))), "{7}");
}

TEST(Normalize, SingletonGeneratorBecomesLetAndInlines) {
  // { v + 1 | v <- {3} } => {(3 + 1)}.
  CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("v"), MakeInt(1)),
      {Qualifier::Generator(Pattern::Var("v"), MakeBag({MakeInt(3)}))});
  EXPECT_EQ(Normalize(MakeNested(comp)), "{(3 + 1)}");
}

TEST(Normalize, EmptyGeneratorCollapsesComprehension) {
  CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(Pattern::Var("v"), MakeBag({}))});
  EXPECT_EQ(Normalize(MakeNested(comp)), "{}");
}

TEST(Normalize, Rule2UnnestsGeneratorOverComprehension) {
  // { x | x <- { y * 2 | (i,y) <- A } } => { y*2 flattened | (i,y) <- A }.
  CompPtr inner = MakeComp(
      MakeBin(BinOp::kMul, MakeVar("y"), MakeInt(2)),
      {Qualifier::Generator(
          Pattern::Tuple({Pattern::Var("i"), Pattern::Var("y")}),
          MakeVar("A"))});
  CompPtr outer = MakeComp(
      MakeVar("x"),
      {Qualifier::Generator(Pattern::Var("x"), MakeNested(inner))});
  std::string out = Normalize(MakeNested(outer));
  EXPECT_NE(out.find("<- A"), std::string::npos) << out;
  // Only one comprehension remains.
  EXPECT_EQ(out.find('{', 1), std::string::npos) << out;
  EXPECT_NE(out.find("* 2"), std::string::npos) << out;
}

TEST(Normalize, Rule2DoesNotUnnestGroupBy) {
  CompPtr inner = MakeComp(
      MakeVar("k"),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("y")}),
           MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeVar("i"))});
  CompPtr outer = MakeComp(
      MakeVar("x"),
      {Qualifier::Generator(Pattern::Var("x"), MakeNested(inner))});
  std::string out = Normalize(MakeNested(outer));
  // The nested comprehension survives as a generator domain.
  EXPECT_NE(out.find("group by"), std::string::npos) << out;
  EXPECT_NE(out.find("x <- {"), std::string::npos) << out;
}

TEST(Normalize, TupleLetSplitsComponentwise) {
  // { i + j | let (i,j) = (1,2) } => {(1 + 2)}.
  CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("i"), MakeVar("j")),
      {Qualifier::Let(Pattern::Tuple({Pattern::Var("i"), Pattern::Var("j")}),
                      MakeTuple({MakeInt(1), MakeInt(2)}))});
  EXPECT_EQ(Normalize(MakeNested(comp)), "{(1 + 2)}");
}

TEST(Normalize, LetNotInlinedAcrossGroupByWhenUsedAfter) {
  // { +/v | (i,v0) <- A, let v = v0, group by k : i } — v is lifted to a
  // bag by the group-by; inlining v := v0 into the head would be wrong.
  CompPtr comp = MakeComp(
      MakeReduce(BinOp::kAdd, MakeVar("v")),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v0")}),
           MakeVar("A")),
       Qualifier::Let(Pattern::Var("v"), MakeVar("v0")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeVar("i"))});
  std::string out = Normalize(MakeNested(comp));
  EXPECT_NE(out.find("let v = v0"), std::string::npos) << out;
  EXPECT_NE(out.find("+/v"), std::string::npos) << out;
}

TEST(Normalize, LetInlinedIntoGroupByKeyItself) {
  // The key expression is evaluated pre-lift, so inlining into it is fine.
  CompPtr comp = MakeComp(
      MakeVar("k"),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::Let(Pattern::Var("kk"), MakeVar("i")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeVar("kk"))});
  std::string out = Normalize(MakeNested(comp));
  EXPECT_NE(out.find("group by k : i"), std::string::npos) << out;
}

TEST(Normalize, SubstitutionRespectsShadowing) {
  // { +/v | let v = 1, let v = {v}, group by k : () } — the second let
  // rebinds v; inlining the first must not reach past it.
  CompPtr comp = MakeComp(
      MakeReduce(BinOp::kAdd, MakeVar("v")),
      {Qualifier::Let(Pattern::Var("v"), MakeInt(1)),
       Qualifier::Let(Pattern::Var("v"), MakeBag({MakeVar("v")}))});
  std::string out = Normalize(MakeNested(comp));
  // v was inlined into the rebinding ({1}) and +/{1} folded to 1.
  EXPECT_EQ(out, "{1}");
}

TEST(Normalize, DeadLetsRemoved) {
  // { v | (i,v) <- A, let dead = i + 1 } — dead is unused.
  CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::Let(Pattern::Var("dead"),
                      MakeBin(BinOp::kAdd, MakeVar("i"), MakeInt(1)))});
  EXPECT_EQ(Normalize(MakeNested(comp)), "{ v | (i,v) <- A }");
}

TEST(Normalize, CapturedLetNotInlined) {
  // let a = i, then i is rebound; a's rhs must not be substituted past
  // the rebinding of i.
  CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("a"), MakeVar("i")),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::Let(Pattern::Var("a"),
                      MakeBin(BinOp::kMul, MakeVar("i"), MakeInt(10))),
       Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("w")}),
           MakeVar("B"))});
  std::string out = Normalize(MakeNested(comp));
  // The let survives (its rhs reads the outer i).
  EXPECT_NE(out.find("let a = (i * 10)"), std::string::npos) << out;
  // And it is positioned before B's generator rebinds i.
  EXPECT_LT(out.find("let a"), out.find("<- B")) << out;
}

TEST(Normalize, TrivialConditionsDropped) {
  CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(Pattern::Var("v"), MakeVar("A")),
       Qualifier::Condition(comp::MakeBool(true)),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("v"), MakeVar("v")))});
  std::string out = Normalize(MakeNested(comp));
  EXPECT_EQ(out, "{ v | v <- A }");
}

TEST(Normalize, FalseConditionEmptiesComprehension) {
  CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(Pattern::Var("v"), MakeVar("A")),
       Qualifier::Condition(comp::MakeBool(false))});
  EXPECT_EQ(Normalize(MakeNested(comp)), "{}");
}

TEST(Normalize, StaticTupleProjection) {
  EXPECT_EQ(Normalize(comp::MakeProj(MakeTuple({MakeInt(1), MakeInt(2)}),
                                     "_2")),
            "2");
}

TEST(Normalize, ReduceOfSingletonFolds) {
  EXPECT_EQ(Normalize(MakeReduce(BinOp::kAdd, MakeBag({MakeVar("w")}))),
            "w");
}

TEST(RenameBound, FreshensAllBinders) {
  CompPtr comp = MakeComp(
      MakeVar("v"),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("i"), MakeVar("k")))});
  comp::NameGen names("r");
  CompPtr renamed = RenameBound(comp, &names);
  // Bound names changed, the free k and the domain A did not.
  EXPECT_EQ(renamed->qualifiers[0].pattern.Vars()[0].substr(0, 2), "r$");
  EXPECT_NE(renamed->head->ToString(), "v");
  EXPECT_NE(renamed->qualifiers[1].expr->ToString().find("k"),
            std::string::npos);
  EXPECT_EQ(renamed->qualifiers[0].expr->ToString(), "A");
}

}  // namespace
}  // namespace diablo::normalize
