// Unit tests for the §3.6/§4 optimizations: loop-iteration (range)
// elimination with affine index inversion, Rule (16) constant group-by
// keys, and Rule (17) unique group-by keys.

#include "opt/optimize.h"

#include <gtest/gtest.h>

#include "diablo/diablo.h"
#include "normalize/normalize.h"
#include "parser/parser.h"
#include "translate/translate.h"

namespace diablo::opt {
namespace {

/// Translates, normalizes and optimizes a program; returns printable
/// target code.
std::string Pipeline(const std::string& src,
                     const OptimizeOptions& options = {}) {
  auto p = parser::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto translated = translate::Translate(*p);
  EXPECT_TRUE(translated.ok()) << translated.status().ToString();
  comp::NameGen names("t");
  comp::TargetProgram normalized =
      normalize::NormalizeTarget(translated->program, &names);
  return OptimizeTarget(normalized, &names, options).ToString();
}

TEST(RangeElimination, DirectIndex) {
  // §3.9: the range joins W's traversal and becomes inRange.
  std::string out = Pipeline("for i = 1, 10 do V[i] := W[i];");
  EXPECT_EQ(out.find("range("), std::string::npos) << out;
  EXPECT_NE(out.find("inRange("), std::string::npos) << out;
}

TEST(RangeElimination, InvertsAffineIndex) {
  // §3.6: for V[i] := W[i-1], the inverse of k = i-1 is i = k+1.
  std::string out = Pipeline("for i = 1, 10 do V[i] := W[i-1];");
  EXPECT_EQ(out.find("range("), std::string::npos) << out;
  // inRange over the inverted index (k + 1).
  EXPECT_NE(out.find("+ 1"), std::string::npos) << out;
  EXPECT_NE(out.find("inRange("), std::string::npos) << out;
}

TEST(RangeElimination, KeepsRangeWithoutInverse) {
  // §3.6: "for i = 1,N do V[i] := 0" keeps its range iteration.
  std::string out = Pipeline("for i = 1, 10 do V[i] := 0.0;");
  EXPECT_NE(out.find("range(1,10)"), std::string::npos) << out;
}

TEST(RangeElimination, CanBeDisabled) {
  OptimizeOptions options;
  options.range_elimination = false;
  std::string out = Pipeline("for i = 1, 10 do V[i] := W[i];", options);
  EXPECT_NE(out.find("range(1,10)"), std::string::npos) << out;
}

TEST(Rule16, RemovesConstantKeyGroupBy) {
  // Scalar increments group by (); Rule (16) removes the group-by and
  // lifts the aggregated value into a nested bag.
  std::string out = Pipeline(R"(
    var n: double = 0.0;
    for v in W do n += v;
  )");
  EXPECT_EQ(out.find("group by"), std::string::npos) << out;
  EXPECT_NE(out.find("+/"), std::string::npos) << out;
}

TEST(Rule16, CanBeDisabled) {
  OptimizeOptions options;
  options.rule16_constant_key = false;
  options.rule17_unique_key = false;
  std::string out = Pipeline(R"(
    var n: double = 0.0;
    for v in W do n += v;
  )", options);
  EXPECT_NE(out.find("group by"), std::string::npos) << out;
}

TEST(Rule17, RemovesUniqueKeyGroupBy) {
  // §4: for i do V[i] += W[i] — the group-by key is W's own index, which
  // is unique, so the group-by disappears.
  std::string out = Pipeline("for i = 1, 10 do V[i] += W[i];");
  EXPECT_EQ(out.find("group by"), std::string::npos) << out;
}

TEST(Rule17, KeepsGroupByForIndirectKeys) {
  // W[K[i]] += V[i]: the key K[i] is not unique; the group-by stays.
  std::string out = Pipeline("for i = 1, 10 do W[K[i]] += V[i];");
  EXPECT_NE(out.find("group by"), std::string::npos) << out;
}

TEST(Rule17, KeepsGroupByForMatrixMultiply) {
  // Matrix multiplication reduces over k: key (i,j) does not cover k.
  std::string out = Pipeline(R"(
    var R: matrix[double] = matrix();
    for i = 0, 3 do
      for j = 0, 3 do {
        R[i,j] := 0.0;
        for k = 0, 3 do
          R[i,j] += M[i,k]*N[k,j];
      }
  )");
  EXPECT_NE(out.find("group by"), std::string::npos) << out;
}

TEST(Rule17, RemovesGroupByForMatrixAddition) {
  // R[i,j] := M[i,j] + N[i,j] is non-incremental (no group-by at all);
  // the elementwise *incremental* variant has a unique (i,j) key.
  std::string out = Pipeline(R"(
    for i = 0, 3 do
      for j = 0, 3 do
        R[i,j] += M[i,j] + N[i,j];
  )");
  EXPECT_EQ(out.find("group by"), std::string::npos) << out;
}

TEST(Cse, RemovesRepeatedArrayReads) {
  // (V[i] - W[i]) * (V[i] - W[i]) reads each array twice; CSE keeps one
  // generator per array.
  std::string out = Pipeline(R"(
    for i = 0, 9 do
      R[i] := (V[i] - W[i]) * (V[i] - W[i]);
  )");
  EXPECT_EQ(out.find("<- V", out.find("<- V") + 1), std::string::npos) << out;
  EXPECT_EQ(out.find("<- W", out.find("<- W") + 1), std::string::npos) << out;
}

TEST(Cse, KeepsDistinctIndexReads) {
  // V[i] and V[i+1] are different elements: both generators stay.
  std::string out = Pipeline(R"(
    for i = 1, 9 do
      R[i] := V[i] * V[i-1];
  )");
  size_t first = out.find("<- V");
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_NE(out.find("<- V", first + 1), std::string::npos) << out;
}

TEST(Cse, CanBeDisabled) {
  OptimizeOptions options;
  options.cse_array_reads = false;
  std::string out = Pipeline(R"(
    for i = 0, 9 do
      R[i] := V[i] * V[i];
  )", options);
  size_t first = out.find("<- V");
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_NE(out.find("<- V", first + 1), std::string::npos) << out;
}

TEST(Cse, DoesNotMergeDifferentArrays) {
  std::string out = Pipeline(R"(
    for i = 0, 9 do
      R[i] := V[i] * W[i];
  )");
  EXPECT_NE(out.find("<- V"), std::string::npos) << out;
  EXPECT_NE(out.find("<- W"), std::string::npos) << out;
}

TEST(Cse, MergesChainsOfThreeOrMore) {
  std::string out = Pipeline(R"(
    for i = 0, 9 do
      R[i] := V[i] + V[i] + V[i];
  )");
  size_t first = out.find("<- V");
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_EQ(out.find("<- V", first + 1), std::string::npos) << out;
}

TEST(Cse, MatrixReadsWithSameIndexPairMerge) {
  std::string out = Pipeline(R"(
    for i = 0, 5 do
      for j = 0, 5 do
        R[i,j] := M[i,j] * M[i,j] + M[j,i];
  )");
  // M[i,j] twice merges; M[j,i] is a different key and stays.
  size_t first = out.find("<- M");
  ASSERT_NE(first, std::string::npos);
  size_t second = out.find("<- M", first + 1);
  ASSERT_NE(second, std::string::npos) << out;
  EXPECT_EQ(out.find("<- M", second + 1), std::string::npos) << out;
}

TEST(Cse, PreservesResults) {
  const char* src = R"(
    var s: double = 0.0;
    var R: vector[double] = vector();
    for i = 0, 14 do {
      R[i] := (V[i] - W[i]) * (V[i] - W[i]);
      s += V[i] * V[i];
    }
  )";
  runtime::ValueVec v, w;
  for (int i = 0; i < 15; ++i) {
    v.push_back(runtime::Value::MakePair(runtime::Value::MakeInt(i),
                                         runtime::Value::MakeDouble(i * 0.5)));
    w.push_back(runtime::Value::MakePair(runtime::Value::MakeInt(i),
                                         runtime::Value::MakeDouble(i - 7.0)));
  }
  Bindings inputs = {{"V", runtime::Value::MakeBag(v)},
                     {"W", runtime::Value::MakeBag(w)}};
  CompileOptions with_cse;
  CompileOptions without_cse;
  without_cse.optimize.cse_array_reads = false;
  runtime::Engine e1, e2;
  auto r1 = CompileAndRun(src, &e1, inputs, with_cse);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = CompileAndRun(src, &e2, inputs, without_cse);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(
      runtime::BagAlmostEquals(*r1->Array("R"), *r2->Array("R"), 1e-9));
  EXPECT_TRUE(runtime::AlmostEquals(*r1->Scalar("s"), *r2->Scalar("s"),
                                    1e-9));
  EXPECT_LT(e1.metrics().num_wide_stages(), e2.metrics().num_wide_stages());
}

// Optimizations must preserve results (checked end to end).
TEST(OptimizerSoundness, SameResultsWithAndWithout) {
  const char* src = R"(
    var total: double = 0.0;
    for i = 0, 19 do {
      V[i] += W[i];
      total += W[i];
    }
    for i = 1, 19 do U[i] := W[i-1];
  )";
  runtime::ValueVec w, v, u;
  for (int i = 0; i < 20; ++i) {
    w.push_back(runtime::Value::MakePair(runtime::Value::MakeInt(i),
                                         runtime::Value::MakeDouble(i * 1.5)));
    v.push_back(runtime::Value::MakePair(runtime::Value::MakeInt(i),
                                         runtime::Value::MakeDouble(100)));
    u.push_back(runtime::Value::MakePair(runtime::Value::MakeInt(i),
                                         runtime::Value::MakeDouble(0)));
  }
  Bindings inputs = {{"W", runtime::Value::MakeBag(w)},
                     {"V", runtime::Value::MakeBag(v)},
                     {"U", runtime::Value::MakeBag(u)}};
  CompileOptions with_opt;
  CompileOptions without_opt;
  without_opt.enable_optimizer = false;
  runtime::Engine e1, e2;
  auto r1 = CompileAndRun(src, &e1, inputs, with_opt);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = CompileAndRun(src, &e2, inputs, without_opt);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(runtime::AlmostEquals(*r1->Scalar("total"),
                                    *r2->Scalar("total"), 1e-9));
  EXPECT_TRUE(runtime::BagAlmostEquals(*r1->Array("V"), *r2->Array("V"),
                                       1e-9));
  EXPECT_TRUE(runtime::BagAlmostEquals(*r1->Array("U"), *r2->Array("U"),
                                       1e-9));
}

TEST(OptimizerCost, FewerShufflesWithOptimizations) {
  // The optimizer must reduce the number of wide stages for V[i] += W[i].
  const char* src = "for i = 0, 99 do V[i] += W[i];";
  runtime::ValueVec w, v;
  for (int i = 0; i < 100; ++i) {
    w.push_back(runtime::Value::MakePair(runtime::Value::MakeInt(i),
                                         runtime::Value::MakeDouble(1)));
    v.push_back(runtime::Value::MakePair(runtime::Value::MakeInt(i),
                                         runtime::Value::MakeDouble(2)));
  }
  Bindings inputs = {{"W", runtime::Value::MakeBag(w)},
                     {"V", runtime::Value::MakeBag(v)}};
  CompileOptions without_opt;
  without_opt.enable_optimizer = false;
  runtime::Engine e1, e2;
  auto r1 = CompileAndRun(src, &e1, inputs);
  ASSERT_TRUE(r1.ok());
  auto r2 = CompileAndRun(src, &e2, inputs, without_opt);
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(e1.metrics().num_wide_stages(), e2.metrics().num_wide_stages());
}

}  // namespace
}  // namespace diablo::opt
