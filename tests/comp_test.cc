// Unit tests for the comprehension IR: printing, structural equality,
// free variables and capture-avoiding substitution.

#include "comp/comp.h"

#include <gtest/gtest.h>

namespace diablo::comp {
namespace {

using runtime::BinOp;

TEST(Pattern, VarsAndPrinting) {
  Pattern p = Pattern::Tuple({Pattern::Var("i"),
                              Pattern::Tuple({Pattern::Var("j"),
                                              Pattern::Var("_")}),
                              Pattern::Var("v")});
  EXPECT_EQ(p.ToString(), "(i,(j,_),v)");
  EXPECT_EQ(p.Vars(), (std::vector<std::string>{"i", "j", "v"}));
}

TEST(Comprehension, PrintsLikeThePaper) {
  // { (k, +/v) | (i,k,v) <- A, group by k : k }.
  CompPtr comp = MakeComp(
      MakeTuple({MakeVar("k"), MakeReduce(BinOp::kAdd, MakeVar("v"))}),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("k"),
                           Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeVar("k"))});
  EXPECT_EQ(comp->ToString(),
            "{ (k,+/v) | (i,k,v) <- A, group by k : k }");
}

TEST(Comprehension, QualifierPrinting) {
  EXPECT_EQ(Qualifier::Let(Pattern::Var("x"), MakeInt(1)).ToString(),
            "let x = 1");
  EXPECT_EQ(Qualifier::Condition(
                MakeBin(BinOp::kEq, MakeVar("a"), MakeVar("b")))
                .ToString(),
            "(a == b)");
  EXPECT_EQ(
      Qualifier::Generator(Pattern::Var("i"), MakeRange(MakeInt(0), MakeInt(9)))
          .ToString(),
      "i <- range(0,9)");
}

TEST(Comprehension, MergePrinting) {
  EXPECT_EQ(MakeMerge(MakeVar("V"), MakeVar("X"))->ToString(), "V <| X");
  EXPECT_EQ(MakeMergeOp(BinOp::kAdd, MakeVar("V"), MakeVar("X"))->ToString(),
            "V <|+ X");
}

TEST(Equals, Structural) {
  CExprPtr a = MakeBin(BinOp::kMul, MakeVar("m"), MakeVar("n"));
  CExprPtr b = MakeBin(BinOp::kMul, MakeVar("m"), MakeVar("n"));
  CExprPtr c = MakeBin(BinOp::kMul, MakeVar("m"), MakeVar("k"));
  EXPECT_TRUE(Equals(a, b));
  EXPECT_FALSE(Equals(a, c));
  EXPECT_FALSE(Equals(a, MakeBin(BinOp::kAdd, MakeVar("m"), MakeVar("n"))));
  EXPECT_TRUE(Equals(MakeMergeOp(BinOp::kAdd, MakeVar("V"), MakeVar("X")),
                     MakeMergeOp(BinOp::kAdd, MakeVar("V"), MakeVar("X"))));
  EXPECT_FALSE(Equals(MakeMergeOp(BinOp::kAdd, MakeVar("V"), MakeVar("X")),
                      MakeMerge(MakeVar("V"), MakeVar("X"))));
}

TEST(FreeVars, SimpleExpressions) {
  CExprPtr e = MakeBin(BinOp::kAdd, MakeVar("x"),
                       MakeProj(MakeVar("y"), "f"));
  EXPECT_EQ(FreeVars(e), (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(FreeVars(MakeInt(3)).empty());
}

TEST(FreeVars, GeneratorsBind) {
  // { x + v | (i,v) <- A, i == k }: free are x, A, k.
  CompPtr comp = MakeComp(
      MakeBin(BinOp::kAdd, MakeVar("x"), MakeVar("v")),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::Condition(MakeBin(BinOp::kEq, MakeVar("i"), MakeVar("k")))});
  EXPECT_EQ(FreeVars(MakeNested(comp)),
            (std::set<std::string>{"x", "A", "k"}));
}

TEST(FreeVars, GroupByKeyReadsBeforeBinding) {
  // { k | (i,v) <- A, group by k : i }: k is bound by the group-by, i by
  // the generator; only A is free.
  CompPtr comp = MakeComp(
      MakeVar("k"),
      {Qualifier::Generator(
           Pattern::Tuple({Pattern::Var("i"), Pattern::Var("v")}),
           MakeVar("A")),
       Qualifier::GroupBy(Pattern::Var("k"), MakeVar("i"))});
  EXPECT_EQ(FreeVars(MakeNested(comp)), (std::set<std::string>{"A"}));
}

TEST(Substitute, ReplacesFreeOnly) {
  std::map<std::string, CExprPtr> subst{{"x", MakeInt(7)}};
  CExprPtr e = MakeBin(BinOp::kAdd, MakeVar("x"), MakeVar("y"));
  EXPECT_EQ(Substitute(e, subst)->ToString(), "(7 + y)");
}

TEST(Substitute, StopsAtRebinding) {
  // { x | let x = 1 }: the binder shadows the outer x.
  CompPtr comp = MakeComp(MakeVar("x"),
                          {Qualifier::Let(Pattern::Var("x"), MakeInt(1))});
  std::map<std::string, CExprPtr> subst{{"x", MakeInt(7)}};
  CExprPtr out = Substitute(MakeNested(comp), subst);
  const auto& inner = out->as<CExpr::Nested>().comp;
  EXPECT_EQ(inner->head->ToString(), "x");  // still the bound x
}

TEST(Substitute, AppliesInDomainBeforeBinding) {
  // { v | v <- x }: x in the domain is free even though v binds after.
  CompPtr comp = MakeComp(
      MakeVar("v"), {Qualifier::Generator(Pattern::Var("v"), MakeVar("x"))});
  std::map<std::string, CExprPtr> subst{{"x", MakeVar("A")}};
  CExprPtr out = Substitute(MakeNested(comp), subst);
  EXPECT_EQ(out->as<CExpr::Nested>().comp->qualifiers[0].expr->ToString(),
            "A");
}

TEST(NameGen, FreshNamesAreDistinct) {
  NameGen names("v");
  std::string a = names.Fresh();
  std::string b = names.Fresh();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.substr(0, 2), "v$");
}

TEST(TargetProgram, Printing) {
  TargetProgram program;
  program.stmts.push_back(MakeDeclare("V", true, nullptr));
  program.stmts.push_back(
      MakeAssign("V", MakeMerge(MakeVar("V"), MakeVar("X")), true));
  program.stmts.push_back(MakeWhile(
      MakeBag({MakeBool(true)}),
      {MakeAssign("n", MakeBag({MakeInt(1)}), false)}));
  std::string printed = program.ToString();
  EXPECT_NE(printed.find("declare V : array"), std::string::npos);
  EXPECT_NE(printed.find("V := V <| X;"), std::string::npos);
  EXPECT_NE(printed.find("while ({true})"), std::string::npos);
}

}  // namespace
}  // namespace diablo::comp
