// Unit tests for the loop-language lexer.

#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace diablo::parser {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  auto tokens = Tokenize(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  if (tokens.ok()) {
    for (const Token& t : *tokens) kinds.push_back(t.kind);
  }
  return kinds;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto kinds = Kinds("var for in do while if else true false foo");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kVar, TokenKind::kFor, TokenKind::kIn,
                       TokenKind::kDo, TokenKind::kWhile, TokenKind::kIf,
                       TokenKind::kElse, TokenKind::kTrue, TokenKind::kFalse,
                       TokenKind::kIdent, TokenKind::kEof}));
}

TEST(Lexer, PrimedIdentifiers) {
  // The paper writes P' and Q' for previous-iteration matrices.
  auto tokens = Tokenize("P' Q'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "P'");
  EXPECT_EQ((*tokens)[1].text, "Q'");
}

TEST(Lexer, Numbers) {
  auto tokens = Tokenize("42 3.5 1e3 2.5e-2 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 3.5);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 1000);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, 0.025);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kInt);
}

TEST(Lexer, Strings) {
  auto tokens = Tokenize(R"("hello" "a\"b" "x\ny")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "a\"b");
  EXPECT_EQ((*tokens)[2].text, "x\ny");
}

TEST(Lexer, UnterminatedString) {
  auto tokens = Tokenize("\"oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(Lexer, CompoundOperators) {
  auto kinds = Kinds(":= += -= *= == != <= >= && || < > = ! + - * / %");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kAssign, TokenKind::kPlusEq,
                       TokenKind::kMinusEq, TokenKind::kStarEq,
                       TokenKind::kEqEq, TokenKind::kNe, TokenKind::kLe,
                       TokenKind::kGe, TokenKind::kAndAnd, TokenKind::kOrOr,
                       TokenKind::kLt, TokenKind::kGt, TokenKind::kEq,
                       TokenKind::kBang, TokenKind::kPlus, TokenKind::kMinus,
                       TokenKind::kStar, TokenKind::kSlash,
                       TokenKind::kPercent, TokenKind::kEof}));
}

TEST(Lexer, Comments) {
  auto kinds = Kinds("a # comment\n b // another\n c");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kIdent,
                                           TokenKind::kIdent,
                                           TokenKind::kIdent,
                                           TokenKind::kEof}));
}

TEST(Lexer, TracksLocations) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].loc.line, 1);
  EXPECT_EQ((*tokens)[0].loc.column, 1);
  EXPECT_EQ((*tokens)[1].loc.line, 2);
  EXPECT_EQ((*tokens)[1].loc.column, 3);
}

TEST(Lexer, RejectsUnknownCharacters) {
  auto tokens = Tokenize("a @ b");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("'@'"), std::string::npos);
}

}  // namespace
}  // namespace diablo::parser
