// Ablation AB4 — broadcast joins (paper §7 future work): the paper
// attributes DIABLO's KMeans and PageRank gaps to distributed joins that
// the hand-written code avoids by broadcasting small datasets. With the
// broadcast-join extension enabled (and the array-read CSE of AB1), the
// planner turns joins against small arrays into broadcast hash joins;
// this binary measures how much of the gap that recovers.

#include <cstdio>
#include <random>

#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

void ComparePanels(const std::string& name, int64_t scale) {
  const auto& spec = diablo::bench::GetProgram(name);
  std::mt19937_64 rng(23);
  diablo::Bindings inputs = spec.make_inputs(scale, rng);

  diablo::runtime::EngineConfig shuffle_config;
  diablo::runtime::EngineConfig broadcast_config;
  broadcast_config.broadcast_join_threshold_bytes = 4 << 20;  // 4 MB

  auto hand = diablo::bench::MeasureHandwritten(spec, inputs,
                                                shuffle_config);
  auto plain = diablo::bench::RunDiablo(spec, inputs, shuffle_config);
  auto broad = diablo::bench::RunDiablo(spec, inputs, broadcast_config);
  if (!hand.ok() || !plain.ok() || !broad.ok()) {
    std::printf("%s ERROR: %s%s%s\n", name.c_str(),
                hand.ok() ? "" : hand.status().ToString().c_str(),
                plain.ok() ? "" : plain.status().ToString().c_str(),
                broad.ok() ? "" : broad.status().ToString().c_str());
    return;
  }
  bool agree = diablo::runtime::BagAlmostEquals(plain->output,
                                                broad->output, 1e-6);
  std::printf("%s (scale %lld): outputs %s\n", name.c_str(),
              static_cast<long long>(scale), agree ? "agree" : "DIFFER");
  std::printf("  %-28s %4lld shuffles %9.4f s  (1.00x of hand-written: "
              "%.4f s)\n",
              "hand-written", static_cast<long long>(hand->shuffles),
              hand->simulated_seconds, hand->simulated_seconds);
  std::printf("  %-28s %4lld shuffles %9.4f s  (%.2fx)\n",
              "DIABLO, shuffle joins",
              static_cast<long long>(plain->shuffles),
              plain->simulated_seconds,
              plain->simulated_seconds / hand->simulated_seconds);
  std::printf("  %-28s %4lld shuffles %9.4f s  (%.2fx)\n\n",
              "DIABLO + broadcast joins",
              static_cast<long long>(broad->shuffles),
              broad->simulated_seconds,
              broad->simulated_seconds / hand->simulated_seconds);
}

}  // namespace

int main() {
  std::printf("AB4: broadcast-join extension vs paper-faithful shuffle "
              "joins\n\n");
  ComparePanels("kmeans", 8000);
  ComparePanels("pagerank", 8);
  ComparePanels("matrix_factorization", 32);
  std::printf(
      "Broadcasting the small join sides (centroid assignments, degree\n"
      "vectors, factor matrices) removes shuffles the hand-written code\n"
      "never performed — recovering part of the gap the paper attributes\n"
      "to DIABLO's join-based plans, exactly as its future-work section\n"
      "anticipates.\n");
  return 0;
}
