// Table 1 — translation time: DIABLO's compositional translator vs the
// baseline approaches (MOLD-like template-rewrite search, Casper-like
// synthesize-and-verify) on the paper's 16 test programs.
//
// Reproduces the paper's qualitative result: DIABLO translates every
// program in microseconds-to-milliseconds; the template/synthesis
// approaches are orders of magnitude slower on the flat loops and fail on
// the complex programs (the paper's `fail` / missing entries).

#include <chrono>
#include <cstdio>

#include "baselines/casper_like.h"
#include "baselines/mold_like.h"
#include "diablo/diablo.h"
#include "workloads/programs.h"

namespace {

double Seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  std::printf("Table 1: translation time in milliseconds "
              "(mean of 4 runs, as in the paper)\n");
  std::printf("%-24s %14s %20s %20s\n", "program", "DIABLO",
              "MOLD-like", "Casper-like");
  for (const auto& entry : diablo::bench::Table1Programs()) {
    // DIABLO compiles every program; average 4 runs.
    double diablo_ms = 0;
    bool diablo_ok = true;
    for (int r = 0; r < 4; ++r) {
      diablo_ms += Seconds([&] {
        auto compiled = diablo::Compile(entry.source);
        diablo_ok = diablo_ok && compiled.ok();
      }) * 1e3 / 4;
    }

    diablo::baselines::BaselineResult mold;
    double mold_ms =
        Seconds([&] { mold = diablo::baselines::MoldLikeTranslate(
                          entry.source); }) * 1e3;
    diablo::baselines::BaselineResult casper;
    double casper_ms =
        Seconds([&] { casper = diablo::baselines::CasperLikeTranslate(
                          entry.source); }) * 1e3;

    char mold_col[64], casper_col[64];
    if (mold.success) {
      std::snprintf(mold_col, sizeof(mold_col), "%.2f (%lld st)", mold_ms,
                    static_cast<long long>(mold.states_explored));
    } else {
      std::snprintf(mold_col, sizeof(mold_col), "fail (%.2f)", mold_ms);
    }
    if (casper.success) {
      std::snprintf(casper_col, sizeof(casper_col), "%.2f (%lld cand)",
                    casper_ms,
                    static_cast<long long>(casper.states_explored));
    } else {
      std::snprintf(casper_col, sizeof(casper_col), "fail (%.2f)",
                    casper_ms);
    }
    std::printf("%-24s %11.3f%s %20s %20s\n", entry.name.c_str(), diablo_ms,
                diablo_ok ? "" : "!", mold_col, casper_col);
  }
  std::printf(
      "\nDIABLO translates all 16 programs; the baselines handle only the\n"
      "flat loops and at far higher cost — the shape of the paper's "
      "Table 1.\n");
  return 0;
}
