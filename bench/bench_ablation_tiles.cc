// Ablation AB2 — packed (tiled) matrices (§5) vs sparse representation:
// elementwise addition and multiplication at growing matrix sizes,
// comparing (a) the sparse DIABLO-style join plan, (b) tiled with coGroup
// merge, and (c) tiled with the fused shuffle-free zip merge.

#include <cstdio>
#include <random>

#include "runtime/array.h"
#include "tiles/tiles.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

using diablo::runtime::BinOp;
using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::Value;

int main() {
  diablo::tiles::TileConfig config{8, 8};
  std::printf("AB2: tiled vs sparse matrix addition — shuffled MB and "
              "simulated seconds\n");
  std::printf("  %6s | %22s | %22s | %22s\n", "n", "sparse join",
              "tiled coGroup", "tiled zip merge");
  for (int64_t n : {32, 64, 96, 128, 192}) {
    std::mt19937_64 rng(static_cast<uint64_t>(n));
    Value a_bag = diablo::bench::RandomMatrix(n, n, rng);
    Value b_bag = diablo::bench::RandomMatrix(n, n, rng);

    // (a) Sparse: join + map (the Figure 3.H hand-written shape).
    Engine sparse_engine;
    Dataset a = sparse_engine.Parallelize(a_bag.bag());
    Dataset b = sparse_engine.Parallelize(b_bag.bag());
    auto joined = sparse_engine.Join(a, b, "add.join");
    if (!joined.ok()) return 1;
    auto summed = sparse_engine.Map(
        *joined, [](const Value& row) -> diablo::StatusOr<Value> {
          const Value& pr = row.tuple()[1];
          return Value::MakePair(row.tuple()[0],
                                 Value::MakeDouble(pr.tuple()[0].ToDouble() +
                                                   pr.tuple()[1].ToDouble()));
        });
    if (!summed.ok()) return 1;
    double sparse_mb = static_cast<double>(
                           sparse_engine.metrics().total_shuffle_bytes()) /
                       (1024 * 1024);
    double sparse_s = sparse_engine.metrics().SimulatedSeconds(
        sparse_engine.config().cluster);

    // Pack once (amortized in a tiled pipeline; not charged below).
    Engine pack_engine;
    auto at = diablo::tiles::Pack(
        pack_engine, pack_engine.Parallelize(a_bag.bag()), config);
    auto bt = diablo::tiles::Pack(
        pack_engine, pack_engine.Parallelize(b_bag.bag()), config);
    if (!at.ok() || !bt.ok()) return 1;

    // (b) Tiled with coGroup.
    Engine cg_engine;
    if (!diablo::tiles::CoGroupMergeAdd(cg_engine, *at, *bt).ok()) return 1;
    double cg_mb =
        static_cast<double>(cg_engine.metrics().total_shuffle_bytes()) /
        (1024 * 1024);
    double cg_s =
        cg_engine.metrics().SimulatedSeconds(cg_engine.config().cluster);

    // (c) Tiled with the fused zip merge (§5's zipPartitions).
    Engine zip_engine;
    if (!diablo::tiles::ZipMergeAdd(zip_engine, *at, *bt).ok()) return 1;
    double zip_mb =
        static_cast<double>(zip_engine.metrics().total_shuffle_bytes()) /
        (1024 * 1024);
    double zip_s =
        zip_engine.metrics().SimulatedSeconds(zip_engine.config().cluster);

    std::printf("  %6lld | %9.2f MB %8.4f s | %9.2f MB %8.4f s | "
                "%9.2f MB %8.4f s\n",
                static_cast<long long>(n), sparse_mb, sparse_s, cg_mb, cg_s,
                zip_mb, zip_s);
  }

  std::printf("\nAB2b: multiplication — sparse join plan vs tiled multiply\n");
  std::printf("  %6s | %22s | %22s\n", "n", "sparse join+reduce",
              "tiled join+reduce");
  for (int64_t n : {16, 32, 48, 64}) {
    std::mt19937_64 rng(static_cast<uint64_t>(n) + 99);
    Value a_bag = diablo::bench::RandomMatrix(n, n, rng);
    Value b_bag = diablo::bench::RandomMatrix(n, n, rng);
    diablo::Bindings inputs{{"M", a_bag},
                            {"N", b_bag},
                            {"n", Value::MakeInt(n)},
                            {"m", Value::MakeInt(n)}};
    auto sparse = diablo::bench::MeasureHandwritten(
        diablo::bench::GetProgram("matrix_multiplication"), inputs, {});
    if (!sparse.ok()) return 1;

    Engine tiled_engine;
    auto at = diablo::tiles::Pack(
        tiled_engine, tiled_engine.Parallelize(a_bag.bag()), config);
    auto bt = diablo::tiles::Pack(
        tiled_engine, tiled_engine.Parallelize(b_bag.bag()), config);
    if (!at.ok() || !bt.ok()) return 1;
    tiled_engine.metrics().Clear();
    if (!diablo::tiles::TiledMatMul(tiled_engine, *at, *bt, config).ok()) {
      return 1;
    }
    double tiled_mb =
        static_cast<double>(tiled_engine.metrics().total_shuffle_bytes()) /
        (1024 * 1024);
    double tiled_s = tiled_engine.metrics().SimulatedSeconds(
        tiled_engine.config().cluster);
    std::printf("  %6lld | %9.2f MB %8.4f s | %9.2f MB %8.4f s\n",
                static_cast<long long>(n),
                static_cast<double>(sparse->shuffle_bytes) / (1024 * 1024),
                sparse->simulated_seconds, tiled_mb, tiled_s);
  }
  // AB2c: the same *translated loop program* executed with sparse vs
  // tiled array storage (diablo::RunOptions::tiled_arrays) — §5's claim
  // that packed arrays need no change to the program. The winning shape
  // is repeated small updates into a large stored matrix: the sparse ⊳
  // re-shuffles all of R on every step, while the tiled path only packs
  // the small delta and zip-merges in place.
  std::printf("\nAB2c: translated band-accumulate program (8 rows into an "
              "n x n matrix, 4 steps),\n      sparse vs tiled storage\n");
  std::printf("  %6s | %22s | %22s\n", "n", "sparse arrays",
              "tiled arrays (zip merge)");
  const char* kAccumulate = R"(
    var R: matrix[double] = matrix();
    for i = 0, n - 1 do
      for j = 0, n - 1 do
        R[i,j] += M[i,j];
    var k: int = 0;
    while (k < 4) {
      k += 1;
      for i = 0, 7 do
        for j = 0, n - 1 do
          R[i,j] += N[i,j];
    }
  )";
  auto compiled = diablo::Compile(kAccumulate);
  if (!compiled.ok()) return 1;
  for (int64_t n : {32, 64, 96, 128}) {
    std::mt19937_64 rng(static_cast<uint64_t>(n) + 5);
    diablo::Bindings inputs{{"M", diablo::bench::RandomMatrix(n, n, rng)},
                            {"N", diablo::bench::RandomMatrix(n, n, rng)},
                            {"n", Value::MakeInt(n)}};
    Engine sparse_engine;
    if (!diablo::Run(*compiled, &sparse_engine, inputs).ok()) return 1;
    Engine tiled_engine;
    diablo::RunOptions options;
    options.tiled_arrays = {"R"};
    options.tile_config = config;
    if (!diablo::Run(*compiled, &tiled_engine, inputs, options).ok()) {
      return 1;
    }
    std::printf(
        "  %6lld | %9.2f MB %8.4f s | %9.2f MB %8.4f s\n",
        static_cast<long long>(n),
        static_cast<double>(sparse_engine.metrics().total_shuffle_bytes()) /
            (1024 * 1024),
        sparse_engine.metrics().SimulatedSeconds(
            sparse_engine.config().cluster),
        static_cast<double>(tiled_engine.metrics().total_shuffle_bytes()) /
            (1024 * 1024),
        tiled_engine.metrics().SimulatedSeconds(
            tiled_engine.config().cluster));
  }

  std::printf(
      "\nTiles shuffle whole blocks instead of single elements: fewer,\n"
      "larger shuffle records, and the co-partitioned merge removes the\n"
      "shuffle entirely — §5's motivation.\n");
  return 0;
}
