// Ablation AB9 — columnar partitions + vectorized operator kernels
// (EngineConfig::columnar) against the boxed per-row engine. Three
// micros at >= 2M rows, outputs compared byte-for-byte:
//   1. a fused narrow chain where every operator carries a kernel
//      (mapValues / filterValues over a double column): batch kernels
//      against per-row EvalBinOp closures,
//   2. a reduceByKey: the vectorized shuffle scatter (one HashColumn
//      pass per partition) plus the typed combine/reduce accumulator
//      against the boxed KeyedAccumulator<Value> path,
//   3. a groupByKey + join pipeline, where only the scatter and the
//      reduceByKey leg columnarize (the wide boxed operators bound the
//      speedup — kept honest on purpose),
// plus the Figure-3 DIABLO workloads columnar vs boxed.
//
// Usage: bench_ablation_columnar [reps] [rows]   (defaults: 3, 2000000)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <vector>

#include "runtime/engine.h"
#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

using diablo::StatusOr;
using diablo::runtime::BinOp;
using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::EngineConfig;
using diablo::runtime::Value;
using diablo::runtime::ValueVec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ValueVec KeyedRows(int64_t n, int64_t keys) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(Value::MakeInt((i * 2654435761LL) % keys),
                                   Value::MakeDouble(i * 0.25)));
  }
  return rows;
}

/// Times `body` best-of-`reps` against a fresh engine per rep; stores the
/// last output for the byte-identity check.
double TimeBody(const EngineConfig& config, int reps, const char* what,
                const std::function<StatusOr<ValueVec>(Engine&)>& body,
                ValueVec* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Engine engine(config);
    double t0 = Now();
    auto result = body(engine);
    double dt = Now() - t0;
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (dt < best) best = dt;
    if (out != nullptr) *out = *result;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  const int64_t n = argc > 2 ? std::atoll(argv[2]) : 2000000;
  const int64_t keys = n / 8;

  std::printf(
      "AB9: columnar partitions + vectorized kernels ablation "
      "(EngineConfig::columnar on/off)\n\n");

  EngineConfig col_config;
  col_config.columnar = true;
  EngineConfig boxed_config;
  boxed_config.columnar = false;

  bool all_equal = true;

  // --- 1. fused narrow chain (every op kernelized) -----------------------
  {
    ValueVec rows = KeyedRows(n, keys);
    auto body = [&rows](Engine& engine) -> StatusOr<ValueVec> {
      Dataset ds = engine.Parallelize(rows);
      DIABLO_ASSIGN_OR_RETURN(
          ds, engine.MapValues(ds, BinOp::kMul, Value::MakeDouble(2.0)));
      DIABLO_ASSIGN_OR_RETURN(
          ds, engine.MapValues(ds, BinOp::kAdd, Value::MakeDouble(1.0)));
      DIABLO_ASSIGN_OR_RETURN(
          ds, engine.FilterValues(ds, BinOp::kLt,
                                  Value::MakeDouble(0.75 * 2.0 * 0.25 *
                                                    static_cast<double>(
                                                        rows.size()))));
      DIABLO_ASSIGN_OR_RETURN(
          ds, engine.MapValues(ds, BinOp::kMax, Value::MakeDouble(8.0)));
      DIABLO_ASSIGN_OR_RETURN(
          ds, engine.MapValues(ds, BinOp::kSub, Value::MakeDouble(0.5)));
      DIABLO_ASSIGN_OR_RETURN(ds, engine.Force(ds));
      DIABLO_ASSIGN_OR_RETURN(auto total, engine.Reduce(ds, BinOp::kAdd));
      ValueVec out;
      if (total.has_value()) out.push_back(*total);
      return out;
    };
    ValueVec col_out, boxed_out;
    const double col_s = TimeBody(col_config, reps, "fused chain", body,
                                  &col_out);
    const double boxed_s = TimeBody(boxed_config, reps, "fused chain", body,
                                    &boxed_out);
    const bool equal = col_out == boxed_out;
    all_equal = all_equal && equal;
    std::printf("fused narrow chain (5 kernel ops), %lld rows, best of %d\n",
                static_cast<long long>(n), reps);
    std::printf("  boxed    (columnar=0): %8.3f s\n", boxed_s);
    std::printf("  columnar (columnar=1): %8.3f s\n", col_s);
    std::printf("  speedup:               %8.2fx   identical: %s\n\n",
                boxed_s / col_s, equal ? "yes" : "NO");
  }

  // --- 2. reduceByKey micro ----------------------------------------------
  {
    ValueVec rows = KeyedRows(n, keys);
    auto body = [&rows](Engine& engine) -> StatusOr<ValueVec> {
      Dataset ds = engine.Parallelize(rows);
      DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                              engine.ReduceByKey(ds, BinOp::kAdd));
      return engine.Collect(sums);
    };
    ValueVec col_out, boxed_out;
    const double col_s = TimeBody(col_config, reps, "reduceByKey", body,
                                  &col_out);
    const double boxed_s = TimeBody(boxed_config, reps, "reduceByKey", body,
                                    &boxed_out);
    const bool equal = col_out == boxed_out;
    all_equal = all_equal && equal;
    std::printf("reduceByKey, %lld rows, %lld keys, best of %d\n",
                static_cast<long long>(n), static_cast<long long>(keys), reps);
    std::printf("  boxed    (columnar=0): %8.3f s\n", boxed_s);
    std::printf("  columnar (columnar=1): %8.3f s\n", col_s);
    std::printf("  speedup:               %8.2fx   identical: %s\n\n",
                boxed_s / col_s, equal ? "yes" : "NO");
  }

  // --- 3. groupByKey + join micro ----------------------------------------
  {
    ValueVec rows = KeyedRows(n, keys);
    auto body = [&rows](Engine& engine) -> StatusOr<ValueVec> {
      Dataset ds = engine.Parallelize(rows);
      DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                              engine.ReduceByKey(ds, BinOp::kAdd));
      DIABLO_ASSIGN_OR_RETURN(Dataset grouped, engine.GroupByKey(ds));
      DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(grouped, sums));
      DIABLO_ASSIGN_OR_RETURN(int64_t count, engine.Count(joined));
      return ValueVec{Value::MakeInt(count)};
    };
    ValueVec col_out, boxed_out;
    const double col_s = TimeBody(col_config, reps, "groupBy+join", body,
                                  &col_out);
    const double boxed_s = TimeBody(boxed_config, reps, "groupBy+join", body,
                                    &boxed_out);
    const bool equal = col_out == boxed_out;
    all_equal = all_equal && equal;
    std::printf("groupByKey + join, %lld rows, best of %d\n",
                static_cast<long long>(n), reps);
    std::printf("  boxed:    %8.3f s\n  columnar: %8.3f s\n", boxed_s, col_s);
    std::printf("  speedup:  %8.2fx   identical: %s\n\n", boxed_s / col_s,
                equal ? "yes" : "NO");
  }

  // --- 4. Figure-3 DIABLO workloads --------------------------------------
  std::printf("%-24s %10s %10s %8s %8s\n", "workload", "boxed s",
              "columnar s", "speedup", "match");
  for (const char* name :
       {"word_count", "group_by", "pagerank", "matrix_multiplication"}) {
    const auto& spec = diablo::bench::GetProgram(name);
    std::mt19937_64 rng(11);
    int64_t scale = 0;
    if (spec.name == "matrix_multiplication") scale = 20;
    else if (spec.name == "pagerank") scale = 7;
    else scale = 50000;
    diablo::Bindings inputs = spec.make_inputs(scale, rng);
    double best_col = 1e300, best_boxed = 1e300;
    StatusOr<diablo::bench::RunStats> col_stats =
        diablo::Status::RuntimeError("not run");
    StatusOr<diablo::bench::RunStats> boxed_stats =
        diablo::Status::RuntimeError("not run");
    for (int r = 0; r < reps; ++r) {
      col_stats = diablo::bench::RunDiablo(spec, inputs, col_config);
      if (col_stats.ok() && col_stats->wall_seconds < best_col) {
        best_col = col_stats->wall_seconds;
      }
      boxed_stats = diablo::bench::RunDiablo(spec, inputs, boxed_config);
      if (boxed_stats.ok() && boxed_stats->wall_seconds < best_boxed) {
        best_boxed = boxed_stats->wall_seconds;
      }
    }
    if (!col_stats.ok() || !boxed_stats.ok()) {
      std::printf("%-24s ERROR: %s\n", name,
                  (!col_stats.ok() ? col_stats : boxed_stats)
                      .status()
                      .ToString()
                      .c_str());
      all_equal = false;
      continue;
    }
    const bool equal = col_stats->output == boxed_stats->output;
    all_equal = all_equal && equal;
    std::printf("%-24s %10.4f %10.4f %7.2fx %8s\n", name, best_boxed,
                best_col, best_boxed / best_col, equal ? "yes" : "NO");
  }

  std::printf(
      "\nColumnar batches keep hot values in typed vectors: fused chains\n"
      "run as loops over int64/double arrays, the scatter hashes a whole\n"
      "key column in one pass, and reduceByKey combines in a typed\n"
      "accumulator — spilling to the boxed path, byte-identically,\n"
      "whenever a row doesn't fit the schema.\n");
  if (!all_equal) {
    std::fprintf(stderr, "AB9 FAILED: outputs diverged\n");
    return 1;
  }
  return 0;
}
