// Table 2 — parallel vs sequential evaluation of the 12 DIABLO-translated
// programs. The paper compiled each loop program to Scala parallel
// collections and to sequential lists; here the same translated bulk plan
// is costed by the cluster model with 24 simulated workers (the paper's
// Xeon core count) vs 1 worker. Dataset sizes are laptop-scale.

#include <chrono>
#include <cstdio>
#include <random>

#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

int64_t Scale(const std::string& name) {
  if (name == "matrix_addition") return 64;
  if (name == "matrix_multiplication") return 32;
  if (name == "pagerank") return 8;  // 2^8 vertices
  if (name == "kmeans") return 4000;
  if (name == "matrix_factorization") return 32;
  return 200000;
}

}  // namespace

int main() {
  std::printf("Table 2: parallel (24 simulated workers) vs sequential "
              "(1 worker) evaluation\n");
  std::printf("The local(s) column is the real wall-clock time of the "
              "single-process\nlocal algebra backend (the paper's Scala "
              "collections target) on this host.\n\n");
  std::printf("%-24s %10s %10s %9s %9s %8s %9s\n", "program", "rows",
              "size(MB)", "par(s)", "seq(s)", "speedup", "local(s)");
  for (const auto& spec : diablo::bench::BenchmarkPrograms()) {
    std::mt19937_64 rng(2020);
    diablo::Bindings inputs = spec.make_inputs(Scale(spec.name), rng);
    int64_t rows = 0, bytes = 0;
    for (const auto& [name, value] : inputs) {
      if (!value.is_bag()) continue;
      rows += static_cast<int64_t>(value.bag().size());
      bytes += value.SerializedBytes();
    }
    diablo::runtime::EngineConfig config;
    config.num_partitions = 24;
    // One run; its stage metrics are costed under both worker counts
    // (the stage structure is identical, only the makespan changes).
    diablo::runtime::ClusterModel par_model, seq_model;
    par_model.num_workers = 24;
    seq_model.num_workers = 1;
    auto run = diablo::bench::Measure(
        config, [&](diablo::runtime::Engine& engine)
                    -> diablo::StatusOr<diablo::runtime::Value> {
          auto compiled = diablo::Compile(spec.source);
          if (!compiled.ok()) return compiled.status();
          auto result = diablo::Run(*compiled, &engine, inputs);
          if (!result.ok()) return result.status();
          double par = engine.metrics().SimulatedSeconds(par_model);
          double seq = engine.metrics().SimulatedSeconds(seq_model);
          return diablo::runtime::Value::MakeTuple(
              {diablo::runtime::Value::MakeDouble(par),
               diablo::runtime::Value::MakeDouble(seq)});
        });
    if (!run.ok()) {
      std::printf("%-24s ERROR: %s\n", spec.name.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    double par = run->output.tuple()[0].AsDouble();
    double seq = run->output.tuple()[1].AsDouble();
    // Wall-clock of the single-process local algebra backend.
    auto t0 = std::chrono::steady_clock::now();
    double local_s = -1;
    auto compiled = diablo::Compile(spec.source);
    if (compiled.ok()) {
      auto local = diablo::RunLocal(*compiled, inputs);
      if (local.ok()) {
        local_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      }
    }
    std::printf("%-24s %10lld %10.2f %9.4f %9.4f %7.1fx %9.4f\n",
                spec.name.c_str(), static_cast<long long>(rows),
                static_cast<double>(bytes) / (1024 * 1024), par, seq,
                par > 0 ? seq / par : 0.0, local_s);
  }
  std::printf(
      "\nEvery program parallelizes under the bulk translation; speedups\n"
      "are bounded by shuffle latency for the join-heavy programs, as in\n"
      "the paper's Table 2.\n");
  return 0;
}
