// Figure 3, panels H–I: Matrix Addition and Matrix Multiplication,
// DIABLO-translated vs hand-written (Appendix B), on square random
// matrices of growing dimension.
//
// Expected shape (paper §6): comparable performance — the generated
// matrix-addition plan is the same join, and the generated multiplication
// is the same join + reduceByKey as the hand-written code.

#include "workloads/harness.h"

int main() {
  using diablo::bench::RunFigurePanel;
  RunFigurePanel("Figure 3.H", "matrix_addition", {24, 48, 72, 96, 128});
  RunFigurePanel("Figure 3.I", "matrix_multiplication", {12, 20, 28, 40, 56});
  return 0;
}
