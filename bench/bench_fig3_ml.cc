// Figure 3, panels K–L: KMeans clustering and Matrix Factorization (one
// step each, as in the paper), DIABLO-translated vs hand-written.
//
// Expected shape (paper §6): these are the programs where DIABLO loses
// clearly. KMeans: the hand-written code broadcasts the centroids and
// shuffles only constant-size partial sums, while DIABLO correlates
// points and centroids with distributed joins. Factorization: the
// generated plan chains many joins where the hand-written version fuses
// the update algebra.

#include "workloads/harness.h"

int main() {
  using diablo::bench::RunFigurePanel;
  RunFigurePanel("Figure 3.K", "kmeans", {1000, 2000, 4000, 8000, 16000});
  RunFigurePanel("Figure 3.L", "matrix_factorization", {16, 24, 32, 48, 64});
  return 0;
}
