// Ablation AB6 — narrow-stage fusion (EngineConfig::fuse_narrow): the
// lazy engine runs a dataset's pending map/mapValues/filter/flatMap
// chain element-by-element inside the next stage boundary, against the
// eager engine that materializes one ValueVec per operator. Three
// measurements:
//   1. an engine-level flatMap -> filter -> map -> reduceByKey pipeline
//      at >= 1M rows (host wall-clock, best of N reps),
//   2. bit-identity of the fused pipeline under fault injection,
//   3. the Figure-3 workloads compiled by DIABLO, fused vs eager.
//
// Usage: bench_ablation_fusion [reps] [rows]   (defaults: 3, 2000000)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "runtime/engine.h"
#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

using diablo::StatusOr;
using diablo::runtime::BinOp;
using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::EngineConfig;
using diablo::runtime::Value;
using diablo::runtime::ValueVec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ValueVec MicroRows(int64_t n) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(Value::MakeInt(i % 5000),
                                   Value::MakeDouble(i * 0.25)));
  }
  return rows;
}

/// The AB6 micro-pipeline over a pre-parallelized input. Returns the
/// collected per-key sums (deterministically ordered).
StatusOr<ValueVec> MicroPipeline(Engine& engine, const Dataset& ds) {
  DIABLO_ASSIGN_OR_RETURN(
      Dataset expanded,
      engine.FlatMap(ds, [](const Value& v) -> StatusOr<ValueVec> {
        return ValueVec{
            v, Value::MakePair(v.tuple()[0], Value::MakeDouble(1.0))};
      }));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset kept,
      engine.Filter(expanded, [](const Value& v) -> StatusOr<bool> {
        return v.tuple()[1].AsDouble() >= 0.5;
      }));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset scaled,
      engine.MapValues(kept, [](const Value& v) -> StatusOr<Value> {
        return Value::MakeDouble(v.AsDouble() * 2.0 + 1.0);
      }));
  DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(scaled, BinOp::kAdd));
  return engine.Collect(sums);
}

/// Best-of-`reps` wall-clock seconds of the micro-pipeline.
double TimeMicro(const EngineConfig& config, const ValueVec& rows, int reps,
                 ValueVec* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Engine engine(config);
    Dataset ds = engine.Parallelize(rows);
    double t0 = Now();
    auto result = MicroPipeline(engine, ds);
    double dt = Now() - t0;
    if (!result.ok()) {
      std::fprintf(stderr, "micro pipeline failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (dt < best) best = dt;
    if (out != nullptr) *out = *result;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  const int64_t n = argc > 2 ? std::atoll(argv[2]) : 2000000;

  std::printf("AB6: narrow-stage fusion ablation (fuse_narrow on/off)\n\n");

  // --- 1. Engine micro-pipeline ------------------------------------------
  ValueVec rows = MicroRows(n);
  EngineConfig fused_config;
  fused_config.fuse_narrow = true;
  EngineConfig eager_config;
  eager_config.fuse_narrow = false;

  ValueVec fused_out, eager_out;
  double fused_s = TimeMicro(fused_config, rows, reps, &fused_out);
  double eager_s = TimeMicro(eager_config, rows, reps, &eager_out);
  const bool micro_equal = fused_out == eager_out;

  // Fused-stage observability: rows/bytes the chain streamed through.
  Engine probe(fused_config);
  {
    Dataset ds = probe.Parallelize(rows);
    auto result = MicroPipeline(probe, ds);
    if (!result.ok()) {
      std::fprintf(stderr, "probe run failed\n");
      return 1;
    }
  }

  std::printf("micro: flatMap -> filter -> mapValues -> reduceByKey, "
              "%lld rows, best of %d\n",
              static_cast<long long>(n), reps);
  std::printf("  eager (fuse_narrow=0): %8.3f s\n", eager_s);
  std::printf("  fused (fuse_narrow=1): %8.3f s\n", fused_s);
  std::printf("  speedup:               %8.2fx   outputs identical: %s\n",
              eager_s / fused_s, micro_equal ? "yes" : "NO");
  std::printf("  fused ops=%lld  rows not materialized=%lld  "
              "bytes not materialized=%.1f MB\n\n",
              static_cast<long long>(probe.metrics().total_fused_ops()),
              static_cast<long long>(
                  probe.metrics().total_rows_not_materialized()),
              static_cast<double>(
                  probe.metrics().total_bytes_not_materialized()) /
                  (1024 * 1024));

  // --- 2. Bit-identity under fault injection -----------------------------
  EngineConfig faulty_config = fused_config;
  faulty_config.faults.seed = 23;
  faulty_config.faults.task_failure_rate = 0.15;
  faulty_config.faults.straggler_rate = 0.05;
  faulty_config.faults.max_task_attempts = 10;
  Engine faulty(faulty_config);
  Dataset faulty_ds = faulty.Parallelize(rows);
  auto faulty_out = MicroPipeline(faulty, faulty_ds);
  const bool fault_equal = faulty_out.ok() && *faulty_out == fused_out;
  std::printf("fault-injected fused run: attempts=%lld (fault-free %d "
              "tasks), output bit-identical: %s\n\n",
              static_cast<long long>(faulty.metrics().total_attempts()),
              3 * fused_config.num_partitions,
              fault_equal ? "yes" : "NO");

  // --- 3. Figure-3 workloads, compiled by DIABLO -------------------------
  std::printf("%-24s %10s %10s %8s  %14s %8s\n", "workload", "eager s",
              "fused s", "speedup", "sim s (fused)", "match");
  bool fig3_equal = true;
  for (const char* name :
       {"conditional_sum", "word_count", "group_by", "matrix_addition",
        "matrix_multiplication", "pagerank", "kmeans"}) {
    const auto& spec = diablo::bench::GetProgram(name);
    std::mt19937_64 rng(11);
    int64_t scale = 0;
    if (spec.name == "matrix_addition") scale = 48;
    else if (spec.name == "matrix_multiplication") scale = 20;
    else if (spec.name == "pagerank") scale = 7;
    else if (spec.name == "kmeans") scale = 4000;
    else scale = 50000;
    diablo::Bindings inputs = spec.make_inputs(scale, rng);
    double best_fused = 1e300, best_eager = 1e300;
    StatusOr<diablo::bench::RunStats> fused_stats =
        diablo::Status::RuntimeError("not run");
    StatusOr<diablo::bench::RunStats> eager_stats =
        diablo::Status::RuntimeError("not run");
    for (int r = 0; r < reps; ++r) {
      fused_stats = diablo::bench::RunDiablo(spec, inputs, fused_config);
      if (fused_stats.ok() && fused_stats->wall_seconds < best_fused) {
        best_fused = fused_stats->wall_seconds;
      }
      eager_stats = diablo::bench::RunDiablo(spec, inputs, eager_config);
      if (eager_stats.ok() && eager_stats->wall_seconds < best_eager) {
        best_eager = eager_stats->wall_seconds;
      }
    }
    if (!fused_stats.ok() || !eager_stats.ok()) {
      std::printf("%-24s ERROR: %s\n", name,
                  (!fused_stats.ok() ? fused_stats : eager_stats)
                      .status()
                      .ToString()
                      .c_str());
      fig3_equal = false;
      continue;
    }
    const bool equal = fused_stats->output == eager_stats->output;
    fig3_equal = fig3_equal && equal;
    std::printf("%-24s %10.4f %10.4f %7.2fx  %14.4f %8s\n", name, best_eager,
                best_fused, best_eager / best_fused,
                fused_stats->simulated_seconds, equal ? "yes" : "NO");
  }

  std::printf(
      "\nFusion removes one full materialization per deferred narrow\n"
      "operator; the shuffle hashes each produced row exactly once.\n");
  if (!micro_equal || !fault_equal || !fig3_equal) {
    std::fprintf(stderr, "AB6 FAILED: outputs diverged\n");
    return 1;
  }
  return 0;
}
