// Figure 3, panel J: PageRank (one step, as in the paper) on RMAT graphs
// of growing scale, DIABLO-translated vs hand-written.
//
// Expected shape (paper §6): DIABLO is noticeably slower — its generated
// plan performs a triple join (graph x ranks x out-degree vector) per
// step where the hand-written code performs one join, plus the merge of
// the rank vector.

#include "workloads/harness.h"

int main() {
  // Sizes are RMAT scales: 2^n vertices, 10 * 2^n edges.
  diablo::bench::RunFigurePanel("Figure 3.J", "pagerank", {6, 7, 8, 9, 10});
  return 0;
}
