// Ablation AB10 — runtime skew mitigation (EngineConfig::skew) against
// the unmitigated engine, on Zipf-distributed aggregation inputs whose
// heavy hitters concentrate rows on a few keys. Three micros at >= 2M
// rows, outputs compared byte-for-byte:
//   1. a skewed reduceByKey (int64 count): the input is hash-partitioned
//      by key — the shape an upstream shuffle produces under key skew —
//      so the heavy hitter's rows pile into one oversized source
//      partition; mitigation salts its map-side combine into chunk
//      tasks,
//   2. the same aggregation with dictionary string keys, exercising the
//      typed string shuffle under a salted combine,
//   3. a skewed groupByKey, where the hot key's destination partition
//      holds most rows and mitigation chunks the reduce-side bag build.
//
// Two clocks are reported per micro. The headline speedup is the
// deterministic cluster cost model's wall-clock (Metrics::
// SimulatedSeconds): stages are priced as the LPT makespan of their
// per-task work over the model's workers, so splitting a hot task is
// visible on any build machine, single-core CI included. Host
// wall-clock is printed next to it and tracks the model whenever real
// cores back host_threads. Exits 1 if any mitigated output diverges
// from its unmitigated twin, or if mitigation never fired.
//
// Usage: bench_ablation_skew [reps] [rows]   (defaults: 3, 2000000)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "workloads/workloads.h"

namespace {

using diablo::StatusOr;
using diablo::bench::ZipfSampler;
using diablo::runtime::BinOp;
using diablo::runtime::ColumnSchema;
using diablo::runtime::ColumnTag;
using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::EngineConfig;
using diablo::runtime::Value;
using diablo::runtime::ValueVec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What one mitigated-vs-unmitigated leg measured.
struct Leg {
  double wall_seconds = 1e300;       // best-of-reps host wall clock
  double simulated_seconds = 0;      // deterministic cluster cost model
  int64_t salt_fanout = 0;           // virtual tasks added by salting
  ValueVec output;
};

/// Times `body` best-of-`reps` against a fresh engine per rep; the cost
/// model figures are deterministic, so the last rep's serve for all.
Leg TimeBody(const EngineConfig& config, int reps, const char* what,
             const std::function<StatusOr<ValueVec>(Engine&)>& body) {
  Leg leg;
  for (int r = 0; r < reps; ++r) {
    Engine engine(config);
    double t0 = Now();
    auto result = body(engine);
    double dt = Now() - t0;
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (dt < leg.wall_seconds) leg.wall_seconds = dt;
    leg.simulated_seconds =
        engine.metrics().SimulatedSeconds(config.cluster);
    leg.salt_fanout = engine.metrics().total_salt_fanout();
    leg.output = *result;
  }
  return leg;
}

/// Runs one micro with skew mitigation off then on and prints the
/// comparison. Returns false when the outputs diverge or the mitigated
/// leg never salted.
bool RunMicro(const char* title, int reps,
              const std::function<StatusOr<ValueVec>(Engine&)>& body) {
  EngineConfig off_config;
  off_config.skew.mitigate = false;
  EngineConfig on_config;
  on_config.skew.mitigate = true;

  const Leg off = TimeBody(off_config, reps, title, body);
  const Leg on = TimeBody(on_config, reps, title, body);
  const bool equal = off.output == on.output;
  std::printf("%s, best of %d\n", title, reps);
  std::printf("  unmitigated: %9.4f s cluster model, %8.3f s host\n",
              off.simulated_seconds, off.wall_seconds);
  std::printf("  mitigated:   %9.4f s cluster model, %8.3f s host "
              "(salt fanout %lld)\n",
              on.simulated_seconds, on.wall_seconds,
              static_cast<long long>(on.salt_fanout));
  std::printf("  speedup:     %9.2fx (cluster model)   identical: %s\n\n",
              off.simulated_seconds / on.simulated_seconds,
              equal ? "yes" : "NO");
  if (on.salt_fanout == 0) {
    std::fprintf(stderr, "%s: mitigation never fired (salt fanout 0)\n",
                 title);
    return false;
  }
  return equal;
}

/// Hash-partitions (key, 1) rows by key — the layout a prior shuffle
/// leaves behind, which under Zipf keys is exactly the oversized-source
/// -partition shape the combine-side mitigation targets.
std::vector<ValueVec> HashPartitionedZipf(
    int64_t n, int parts_n, double s,
    const std::function<Value(int64_t)>& make_key) {
  std::mt19937_64 rng(7);
  ZipfSampler zipf(n / 8, s);
  std::vector<ValueVec> parts(static_cast<size_t>(parts_n));
  for (int64_t i = 0; i < n; ++i) {
    Value key = make_key(zipf(rng));
    ValueVec& part = parts[key.Hash() % parts.size()];
    part.push_back(Value::MakePair(std::move(key), Value::MakeInt(1)));
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  const int64_t n = argc > 2 ? std::atoll(argv[2]) : 2000000;

  std::printf(
      "AB10: runtime skew mitigation ablation (EngineConfig::skew on/off),\n"
      "Zipf(2.0) keys, %lld rows\n\n",
      static_cast<long long>(n));

  bool ok = true;

  // --- 1. skewed reduceByKey, int64 keys ---------------------------------
  {
    std::vector<ValueVec> parts = HashPartitionedZipf(
        n, EngineConfig().num_partitions, 2.0,
        [](int64_t rank) { return Value::MakeInt(rank); });
    ColumnSchema schema;
    schema.key = ColumnTag::kInt64;
    schema.value = ColumnTag::kInt64;
    ok = RunMicro("skewed reduceByKey (int64 keys)", reps,
                  [&parts, schema](Engine& engine) -> StatusOr<ValueVec> {
                    DIABLO_ASSIGN_OR_RETURN(
                        Dataset sums,
                        engine.ReduceByKey(Dataset(parts), BinOp::kAdd,
                                           "reduceByKey", schema));
                    return engine.Collect(sums);
                  }) &&
         ok;
  }

  // --- 2. skewed reduceByKey, dictionary string keys ---------------------
  {
    std::vector<ValueVec> parts = HashPartitionedZipf(
        n, EngineConfig().num_partitions, 2.0, [](int64_t rank) {
          return Value::MakeString("word" + std::to_string(rank));
        });
    ColumnSchema schema;
    schema.key = ColumnTag::kString;
    schema.value = ColumnTag::kInt64;
    ok = RunMicro("skewed reduceByKey (string keys)", reps,
                  [&parts, schema](Engine& engine) -> StatusOr<ValueVec> {
                    DIABLO_ASSIGN_OR_RETURN(
                        Dataset sums,
                        engine.ReduceByKey(Dataset(parts), BinOp::kAdd,
                                           "reduceByKey", schema));
                    return engine.Collect(sums);
                  }) &&
         ok;
  }

  // --- 3. skewed groupByKey ----------------------------------------------
  {
    std::mt19937_64 rng(7);
    ValueVec rows;
    rows.reserve(static_cast<size_t>(n));
    ZipfSampler zipf(n / 8, 2.0);
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(Value::MakePair(Value::MakeInt(zipf(rng)),
                                     Value::MakeInt(i)));
    }
    ok = RunMicro("skewed groupByKey", reps,
                  [&rows](Engine& engine) -> StatusOr<ValueVec> {
                    Dataset ds = engine.Parallelize(rows);
                    DIABLO_ASSIGN_OR_RETURN(Dataset grouped,
                                            engine.GroupByKey(ds));
                    return engine.Collect(grouped);
                  }) &&
         ok;
  }

  std::printf(
      "Salting splits a hot task into virtual tasks the scheduler can\n"
      "spread across workers: oversized source partitions combine as\n"
      "row chunks, hot reduceByKey destinations fold as disjoint hash\n"
      "stripes, and hot groupByKey destinations build their bags chunk\n"
      "by chunk — re-merged in a fixed order so every run stays\n"
      "byte-identical to the unmitigated engine.\n");
  if (!ok) {
    std::fprintf(stderr,
                 "AB10 FAILED: outputs diverged or mitigation inert\n");
    return 1;
  }
  return 0;
}
