// Ablation AB5 — fault tolerance: sweeps the injected task-failure rate
// over representative workloads and reports what recovery costs. Every
// faulty run uses a fixed injector seed, so the numbers are exactly
// reproducible, and every completed run's output is compared against the
// fault-free output — the engine's invariant is that they are identical
// (recovery replays the same evaluation order, so even floating-point
// results match bit for bit).

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

using diablo::bench::RunStats;
using diablo::runtime::EngineConfig;

void SweepProgram(const std::string& name, int64_t scale) {
  const auto& spec = diablo::bench::GetProgram(name);
  std::mt19937_64 rng(23);
  diablo::Bindings inputs = spec.make_inputs(scale, rng);

  EngineConfig clean_config;
  clean_config.serialize_shuffles = true;
  auto clean = diablo::bench::MeasureHandwritten(spec, inputs, clean_config);
  if (!clean.ok()) {
    std::printf("%s ERROR: %s\n", name.c_str(),
                clean.status().ToString().c_str());
    return;
  }

  std::printf("%s (scale %lld): fault-free %.4f s\n", name.c_str(),
              static_cast<long long>(scale), clean->simulated_seconds);
  std::printf("  %9s | %8s %10s %10s %12s %8s | %7s\n", "fail-rate",
              "attempts", "recomputed", "faulty(s)", "recovery(s)",
              "overhead", "output");
  for (double rate : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    EngineConfig config;
    config.serialize_shuffles = true;
    config.faults.seed = 41;
    config.faults.task_failure_rate = rate;
    config.faults.straggler_rate = 0.02;
    config.faults.corrupt_shuffle_rate = 0.0005;
    config.faults.max_task_attempts = 10;
    // The default 50 ms backoff is sized for benchmark-scale jobs of
    // seconds; these sweeps simulate ~10 ms jobs, so scale it down to
    // keep the overhead column meaningful.
    config.faults.retry_backoff_seconds = 0.0005;
    // Lose two early-stage input partitions so the lineage-recompute
    // path shows up in the table (directives naming stages a program
    // does not reach are simply never triggered).
    config.faults.lose_partitions = {{1, 0, 0}, {2, 1, 0}};
    auto faulty = diablo::bench::MeasureHandwritten(spec, inputs, config);
    if (!faulty.ok()) {
      std::printf("  %9.2f | ERROR: %s\n", rate,
                  faulty.status().ToString().c_str());
      continue;
    }
    // Bit-identical, not approximate: recovery must not perturb results.
    const bool identical = faulty->output == clean->output;
    std::printf("  %9.2f | %8lld %10lld %10.4f %12.4f %7.2f%% | %7s\n", rate,
                static_cast<long long>(faulty->attempts),
                static_cast<long long>(faulty->recomputed_partitions),
                faulty->simulated_seconds, faulty->recovery_seconds,
                faulty->fault_free_seconds > 0
                    ? 100.0 * faulty->recovery_seconds /
                          faulty->fault_free_seconds
                    : 0.0,
                identical ? "exact" : "DIFFER");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("AB5: recovery overhead under injected faults\n");
  std::printf(
      "(fixed fault seed; straggler rate 0.02 and shuffle-corruption rate\n"
      " 0.0005 ride along at every point; 'overhead' is recovery seconds\n"
      " over the same run's fault-free cost)\n\n");
  SweepProgram("word_count", 20000);
  SweepProgram("group_by", 20000);
  SweepProgram("kmeans", 8000);
  SweepProgram("pagerank", 8);
  std::printf(
      "Recovery cost grows smoothly with the failure rate: wasted attempt\n"
      "work plus backoff dominates, lineage recomputation stays bounded\n"
      "because iterative loops checkpoint their loop-carried arrays. All\n"
      "completed runs reproduce the fault-free output exactly.\n");
  return 0;
}
