// Google-benchmark microbenchmarks for the engine substrate: per-operator
// throughput of the narrow and wide operators the generated plans are
// built from. These are host wall-clock numbers (single machine), useful
// for tracking engine regressions; the paper-facing numbers come from the
// cluster cost model in the other binaries.

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "runtime/column_batch.h"
#include "runtime/engine.h"
#include "runtime/operators.h"
#include "workloads/workloads.h"

namespace {

using diablo::runtime::BinOp;
using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::Value;
using diablo::runtime::ValueVec;

Dataset KeyedData(Engine& engine, int64_t n, int64_t keys) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(Value::MakeInt(i % keys),
                                   Value::MakeDouble(i * 0.5)));
  }
  return engine.Parallelize(std::move(rows));
}

void BM_Map(benchmark::State& state) {
  Engine engine;
  Dataset ds = KeyedData(engine, state.range(0), 100);
  for (auto _ : state) {
    // Narrow operators are lazy: Force runs the deferred wave so the
    // benchmark measures row throughput, not closure capture.
    auto mapped = engine.Map(ds, [](const Value& v) -> diablo::StatusOr<Value> {
      return Value::MakeDouble(v.tuple()[1].ToDouble() * 2);
    });
    auto out = engine.Force(*mapped);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Map)->Arg(10000)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  Engine engine;
  Dataset ds = KeyedData(engine, state.range(0), 100);
  for (auto _ : state) {
    auto kept = engine.Filter(ds, [](const Value& v) -> diablo::StatusOr<bool> {
      return v.tuple()[1].ToDouble() < 100;
    });
    auto out = engine.Force(*kept);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(10000)->Arg(100000);

// The fused-pipeline payoff: flatMap -> filter -> map -> reduceByKey with
// the chain either deferred into the shuffle (fused=1) or materialized
// one ValueVec per operator (fused=0, the eager engine).
void BM_NarrowChain(benchmark::State& state) {
  diablo::runtime::EngineConfig config;
  config.fuse_narrow = state.range(1) != 0;
  Engine engine(config);
  Dataset ds = KeyedData(engine, state.range(0), 100);
  for (auto _ : state) {
    auto expanded =
        engine.FlatMap(ds, [](const Value& v) -> diablo::StatusOr<ValueVec> {
          return ValueVec{v, Value::MakePair(v.tuple()[0],
                                             Value::MakeDouble(1.0))};
        });
    auto kept = engine.Filter(
        *expanded, [](const Value& v) -> diablo::StatusOr<bool> {
          return v.tuple()[1].ToDouble() >= 0;
        });
    auto scaled = engine.MapValues(
        *kept, [](const Value& v) -> diablo::StatusOr<Value> {
          return Value::MakeDouble(v.ToDouble() * 0.5);
        });
    auto out = engine.ReduceByKey(*scaled, BinOp::kAdd);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NarrowChain)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->ArgNames({"rows", "fused"});

void BM_ReduceByKey(benchmark::State& state) {
  Engine engine;
  Dataset ds = KeyedData(engine, state.range(0), state.range(1));
  for (auto _ : state) {
    auto out = engine.ReduceByKey(ds, BinOp::kAdd);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceByKey)
    ->Args({10000, 10})
    ->Args({10000, 1000})
    ->Args({100000, 100});

void BM_GroupByKey(benchmark::State& state) {
  Engine engine;
  Dataset ds = KeyedData(engine, state.range(0), state.range(1));
  for (auto _ : state) {
    auto out = engine.GroupByKey(ds);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByKey)->Args({10000, 10})->Args({100000, 100});

void BM_Join(benchmark::State& state) {
  Engine engine;
  Dataset left = KeyedData(engine, state.range(0), state.range(0) / 4);
  Dataset right = KeyedData(engine, state.range(0), state.range(0) / 4);
  for (auto _ : state) {
    auto out = engine.Join(left, right);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_Join)->Arg(10000)->Arg(50000);

// The AB7 hot path: reduceByKey over a key set small enough that the
// map-side combine does almost all the work, comparing the hash
// accumulator (hash=1, the default) against the ordered-map baseline
// (hash=0). Tracked by CI: a >20% regression on the hash variant fails
// the bench-smoke threshold check.
void BM_ReduceByKeyHot(benchmark::State& state) {
  diablo::runtime::EngineConfig config;
  config.hash_aggregation = state.range(2) != 0;
  Engine engine(config);
  Dataset ds = KeyedData(engine, state.range(0), state.range(1));
  for (auto _ : state) {
    auto out = engine.ReduceByKey(ds, BinOp::kAdd);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceByKeyHot)
    ->Args({100000, 1000, 0})
    ->Args({100000, 1000, 1})
    ->Args({200000, 20000, 0})
    ->Args({200000, 20000, 1})
    ->ArgNames({"rows", "keys", "hash"});

// The AB8 overhead gate: the same hot reduceByKey with tracing off vs
// on. tools/check_trace_overhead.py compares the two variants from one
// benchmark JSON and fails CI when the traced run is > 5% slower.
void BM_ReduceByKeyHotTraced(benchmark::State& state) {
  diablo::runtime::EngineConfig config;
  config.tracing = state.range(2) != 0;
  Engine engine(config);
  Dataset ds = KeyedData(engine, state.range(0), state.range(1));
  for (auto _ : state) {
    auto out = engine.ReduceByKey(ds, BinOp::kAdd);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceByKeyHotTraced)
    ->Args({200000, 20000, 0})
    ->Args({200000, 20000, 1})
    ->ArgNames({"rows", "keys", "trace"});

// The cluster-telemetry overhead gate: the same reduceByKey executed
// over forked worker processes, with tracing (and therefore the
// per-task kTelemetry frames the workers ship back) off vs on.
// tools/check_trace_overhead.py holds the traced variant within the
// same 5% budget as the local pair above — spans ride an
// already-open socket just ahead of each result frame, so the frame
// overhead, not the span bookkeeping, is what this measures.
void BM_DistReduceByKeyTraced(benchmark::State& state) {
  diablo::dist::DistConfig dist_config;
  dist_config.num_workers = 2;
  diablo::dist::Coordinator coordinator(dist_config);
  diablo::runtime::EngineConfig config;
  config.remote = &coordinator;
  config.tracing = state.range(2) != 0;
  Engine engine(config);
  Dataset ds = KeyedData(engine, state.range(0), state.range(1));
  for (auto _ : state) {
    auto out = engine.ReduceByKey(ds, BinOp::kAdd);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistReduceByKeyTraced)
    ->Args({100000, 10000, 0})
    ->Args({100000, 10000, 1})
    ->ArgNames({"rows", "keys", "trace"});

// The AB9 ablation pair CI gates with check_bench_regression.py
// --pair: reduceByKey with the columnar engine (typed combine, typed
// shuffle, typed reduce — no boxed pair row between the source and the
// final sorted emit) against the boxed baseline on the same input.
void BM_ColumnarReduceByKey(benchmark::State& state) {
  diablo::runtime::EngineConfig config;
  config.columnar = state.range(2) != 0;
  Engine engine(config);
  Dataset ds = KeyedData(engine, state.range(0), state.range(1));
  for (auto _ : state) {
    auto out = engine.ReduceByKey(ds, BinOp::kAdd);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnarReduceByKey)
    ->Args({200000, 25000, 0})
    ->Args({200000, 25000, 1})
    ->ArgNames({"rows", "keys", "columnar"});

// Second AB9 pair: a fused chain where every operator carries a kernel,
// so the columnar engine runs it as vector loops over a double column.
void BM_ColumnarFusedChain(benchmark::State& state) {
  diablo::runtime::EngineConfig config;
  config.columnar = state.range(1) != 0;
  Engine engine(config);
  Dataset ds = KeyedData(engine, state.range(0), 100);
  for (auto _ : state) {
    auto a = engine.MapValues(ds, BinOp::kMul, Value::MakeDouble(2.0));
    auto b = engine.MapValues(*a, BinOp::kAdd, Value::MakeDouble(1.0));
    auto c = engine.FilterValues(*b, BinOp::kLt, Value::MakeDouble(1e7));
    auto d = engine.MapValues(*c, BinOp::kSub, Value::MakeDouble(0.5));
    auto out = engine.Force(*d);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnarFusedChain)
    ->Args({200000, 0})
    ->Args({200000, 1})
    ->ArgNames({"rows", "columnar"});

// The AB10 ablation pair: reduceByKey over a Zipf(2)-keyed count whose
// input is hash-partitioned by key — the heavy hitter's rows pile into
// one oversized source partition, exactly the shape an upstream shuffle
// produces under key skew. mitigate=1 lets the engine salt the hot
// combine into chunk tasks (EngineConfig::skew); mitigate=0 serializes
// it. Times are the deterministic cluster cost model's seconds
// (UseManualTime), so the CI --pair gate is machine-independent; the
// property suite (tests/skew_test.cc) holds the two outputs
// byte-identical.
void BM_ReduceByKeySkewed(benchmark::State& state) {
  const int64_t n = state.range(0);
  diablo::runtime::EngineConfig config;
  config.skew.mitigate = state.range(1) != 0;
  std::mt19937_64 rng(7);
  diablo::bench::ZipfSampler zipf(n / 8, 2.0);
  std::vector<ValueVec> parts(static_cast<size_t>(config.num_partitions));
  for (int64_t i = 0; i < n; ++i) {
    Value key = Value::MakeInt(zipf(rng));
    ValueVec& part = parts[key.Hash() % parts.size()];
    part.push_back(Value::MakePair(std::move(key), Value::MakeInt(1)));
  }
  diablo::runtime::ColumnSchema schema;
  schema.key = diablo::runtime::ColumnTag::kInt64;
  schema.value = diablo::runtime::ColumnTag::kInt64;
  for (auto _ : state) {
    Engine engine(config);
    auto out = engine.ReduceByKey(Dataset(parts), BinOp::kAdd, "reduceByKey",
                                  schema);
    benchmark::DoNotOptimize(out);
    state.SetIterationTime(engine.metrics().SimulatedSeconds(config.cluster));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceByKeySkewed)
    ->Args({200000, 0})
    ->Args({200000, 1})
    ->ArgNames({"rows", "mitigate"})
    ->UseManualTime();

// Join probe throughput: the build side fits a hash table; the probe
// side reuses the memoized shuffle hash instead of re-walking the key.
void BM_JoinProbe(benchmark::State& state) {
  diablo::runtime::EngineConfig config;
  config.hash_aggregation = state.range(1) != 0;
  Engine engine(config);
  Dataset left = KeyedData(engine, state.range(0) / 8, state.range(0) / 8);
  Dataset right = KeyedData(engine, state.range(0), state.range(0) / 8);
  for (auto _ : state) {
    auto out = engine.Join(left, right);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinProbe)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->ArgNames({"rows", "hash"});

void BM_ValueHash(benchmark::State& state) {
  Value v = Value::MakeTuple({Value::MakeInt(42),
                              Value::MakeString("key-string"),
                              Value::MakeDouble(3.14)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Hash());
  }
}
BENCHMARK(BM_ValueHash);

// Satellite of the AB9 columnar work: vectorized Value::Hash over a
// whole column vs hashing each boxed row. String columns read the hash
// cached at dictionary-intern time, so per-row hashing cost collapses
// to an array load; tag 0 = int64 column, 1 = dictionary strings,
// 2 = boxed rows (the fallback shape — hashes like the per-row loop).
void BM_HashColumn(benchmark::State& state) {
  const int64_t n = state.range(0);
  diablo::runtime::Column col;
  for (int64_t i = 0; i < n; ++i) {
    switch (state.range(1)) {
      case 0:
        col.Append(Value::MakeInt(i * 2654435761LL));
        break;
      case 1:
        col.Append(Value::MakeString("word" + std::to_string(i % 64)));
        break;
      default:
        col.Append(Value::MakeTuple(
            {Value::MakeInt(i % 64), Value::MakeDouble(i * 0.5)}));
        break;
    }
  }
  std::vector<size_t> hashes;
  for (auto _ : state) {
    HashColumn(col, &hashes);
    benchmark::DoNotOptimize(hashes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashColumn)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->ArgNames({"rows", "tag"});

// The boxed baseline BM_HashColumn is compared against.
void BM_HashRowsBoxed(benchmark::State& state) {
  const int64_t n = state.range(0);
  ValueVec rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(state.range(1) == 0
                       ? Value::MakeInt(i * 2654435761LL)
                       : Value::MakeString("word" + std::to_string(i % 64)));
  }
  std::vector<size_t> hashes;
  for (auto _ : state) {
    hashes.clear();
    for (const Value& v : rows) hashes.push_back(v.Hash());
    benchmark::DoNotOptimize(hashes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashRowsBoxed)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->ArgNames({"rows", "tag"});

void BM_ValueCopy(benchmark::State& state) {
  ValueVec elems;
  for (int i = 0; i < 1000; ++i) elems.push_back(Value::MakeInt(i));
  Value bag = Value::MakeBag(std::move(elems));
  for (auto _ : state) {
    Value copy = bag;  // O(1) shared copy
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ValueCopy);

}  // namespace

BENCHMARK_MAIN();
