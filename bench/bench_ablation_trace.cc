// Ablation AB8 — tracing overhead (EngineConfig::tracing on/off). Three
// measurements:
//   1. a reduceByKey micro at >= 2M rows, traced vs untraced — the span
//      hooks sit on the hottest driver path, so this bounds the
//      worst-case overhead (gated at < 5% in CI by
//      tools/check_trace_overhead.py over the BM_ReduceByKeyHot pair),
//   2. an iterative multi-wave loop (many short waves => many spans),
//   3. the Figure-3 workloads across the engine matrix
//      {eager, fused} x {ordered, hash-agg}, tracing on vs off, outputs
//      compared byte-for-byte — tracing must never change a result.
//
// Usage: bench_ablation_trace [reps] [rows]   (defaults: 3, 2000000)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <vector>

#include "runtime/engine.h"
#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

using diablo::StatusOr;
using diablo::runtime::BinOp;
using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::EngineConfig;
using diablo::runtime::Value;
using diablo::runtime::ValueVec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ValueVec KeyedRows(int64_t n, int64_t keys) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(Value::MakeInt((i * 2654435761LL) % keys),
                                   Value::MakeDouble(i * 0.25)));
  }
  return rows;
}

/// Times `body` best-of-`reps` against a fresh engine per rep; stores the
/// last output for the byte-identity check.
double TimeBody(const EngineConfig& config, int reps, const char* what,
                const std::function<StatusOr<ValueVec>(Engine&)>& body,
                ValueVec* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Engine engine(config);
    double t0 = Now();
    auto result = body(engine);
    double dt = Now() - t0;
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (dt < best) best = dt;
    if (out != nullptr) *out = *result;
  }
  return best;
}

/// "+1.3%" style overhead of traced over untraced.
double OverheadPct(double traced_s, double untraced_s) {
  return untraced_s > 0 ? (traced_s / untraced_s - 1.0) * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  const int64_t n = argc > 2 ? std::atoll(argv[2]) : 2000000;
  const int64_t keys = n / 8;

  std::printf("AB8: tracing overhead ablation (EngineConfig::tracing on/off)\n\n");

  bool all_equal = true;

  // --- 1. reduceByKey micro ----------------------------------------------
  {
    ValueVec rows = KeyedRows(n, keys);
    auto body = [&rows](Engine& engine) -> StatusOr<ValueVec> {
      Dataset ds = engine.Parallelize(rows);
      DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(ds, BinOp::kAdd));
      return engine.Collect(sums);
    };
    EngineConfig traced;
    EngineConfig untraced;
    untraced.tracing = false;
    ValueVec traced_out, untraced_out;
    const double traced_s = TimeBody(traced, reps, "reduceByKey", body,
                                     &traced_out);
    const double untraced_s = TimeBody(untraced, reps, "reduceByKey", body,
                                       &untraced_out);
    const bool equal = traced_out == untraced_out;
    all_equal = all_equal && equal;
    std::printf("reduceByKey, %lld rows, %lld keys, best of %d\n",
                static_cast<long long>(n), static_cast<long long>(keys), reps);
    std::printf("  untraced (tracing=0): %8.3f s\n", untraced_s);
    std::printf("  traced   (tracing=1): %8.3f s\n", traced_s);
    std::printf("  overhead:             %+8.2f%%   identical: %s\n\n",
                OverheadPct(traced_s, untraced_s), equal ? "yes" : "NO");
  }

  // --- 2. iterative multi-wave loop --------------------------------------
  {
    // Many short waves: the per-wave/per-task span bookkeeping is the
    // whole cost here, so this is the tracer's worst realistic case.
    const int iters = 64;
    ValueVec rows = KeyedRows(n / 100, 500);
    auto body = [&rows, iters](Engine& engine) -> StatusOr<ValueVec> {
      Dataset cur = engine.Parallelize(rows);
      for (int iter = 0; iter < iters; ++iter) {
        DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                                engine.ReduceByKey(cur, BinOp::kAdd));
        DIABLO_ASSIGN_OR_RETURN(
            cur, engine.MapValues(sums, [](const Value& v) -> StatusOr<Value> {
              return Value::MakeDouble(v.AsDouble() * 0.5);
            }));
      }
      return engine.Collect(cur);
    };
    EngineConfig traced;
    traced.host_threads = 4;
    EngineConfig untraced = traced;
    untraced.tracing = false;
    ValueVec traced_out, untraced_out;
    const double traced_s = TimeBody(traced, reps, "loop traced", body,
                                     &traced_out);
    const double untraced_s = TimeBody(untraced, reps, "loop untraced", body,
                                       &untraced_out);
    const bool equal = traced_out == untraced_out;
    all_equal = all_equal && equal;
    std::printf("%d-iteration reduceByKey loop, %lld rows, host_threads=4\n",
                iters, static_cast<long long>(n / 100));
    std::printf("  untraced: %8.3f s\n  traced:   %8.3f s\n", untraced_s,
                traced_s);
    std::printf("  overhead: %+8.2f%%   identical: %s\n\n",
                OverheadPct(traced_s, untraced_s), equal ? "yes" : "NO");
  }

  // --- 3. Figure-3 workloads across the engine matrix --------------------
  struct Mode {
    const char* label;
    bool fuse;
    bool hash;
  };
  const Mode modes[] = {{"eager/ordered", false, false},
                        {"eager/hash", false, true},
                        {"fused/ordered", true, false},
                        {"fused/hash", true, true}};
  std::printf("%-24s %-14s %10s %10s %9s %6s\n", "workload", "mode",
              "untraced s", "traced s", "overhead", "match");
  for (const char* name : {"word_count", "group_by", "pagerank"}) {
    const auto& spec = diablo::bench::GetProgram(name);
    std::mt19937_64 rng(11);
    const int64_t scale = spec.name == "pagerank" ? 7 : 50000;
    diablo::Bindings inputs = spec.make_inputs(scale, rng);
    for (const Mode& mode : modes) {
      EngineConfig traced;
      traced.fuse_narrow = mode.fuse;
      traced.hash_aggregation = mode.hash;
      EngineConfig untraced = traced;
      untraced.tracing = false;
      double best_traced = 1e300, best_untraced = 1e300;
      StatusOr<diablo::bench::RunStats> traced_stats =
          diablo::Status::RuntimeError("not run");
      StatusOr<diablo::bench::RunStats> untraced_stats =
          diablo::Status::RuntimeError("not run");
      for (int r = 0; r < reps; ++r) {
        traced_stats = diablo::bench::RunDiablo(spec, inputs, traced);
        if (traced_stats.ok() && traced_stats->wall_seconds < best_traced) {
          best_traced = traced_stats->wall_seconds;
        }
        untraced_stats = diablo::bench::RunDiablo(spec, inputs, untraced);
        if (untraced_stats.ok() &&
            untraced_stats->wall_seconds < best_untraced) {
          best_untraced = untraced_stats->wall_seconds;
        }
      }
      if (!traced_stats.ok() || !untraced_stats.ok()) {
        std::printf("%-24s %-14s ERROR: %s\n", name, mode.label,
                    (!traced_stats.ok() ? traced_stats : untraced_stats)
                        .status()
                        .ToString()
                        .c_str());
        all_equal = false;
        continue;
      }
      const bool equal = traced_stats->output == untraced_stats->output;
      all_equal = all_equal && equal;
      std::printf("%-24s %-14s %10.4f %10.4f %+8.2f%% %6s\n", name,
                  mode.label, best_untraced, best_traced,
                  OverheadPct(best_traced, best_untraced),
                  equal ? "yes" : "NO");
    }
  }

  std::printf(
      "\nThe tracing-off path is one null-pointer test per hook; traced\n"
      "runs add a mutex-guarded span append per task and a handful of\n"
      "driver-side spans per stage. Outputs must match bit-for-bit.\n");
  if (!all_equal) {
    std::fprintf(stderr, "AB8 FAILED: tracing changed an output\n");
    return 1;
  }
  return 0;
}
