// Ablation AB1 — effect of the comprehension optimizations (§3.6, §4) on
// generated-plan cost: range elimination, Rule (16) constant keys and
// Rule (17) unique keys are toggled individually and the resulting
// shuffle counts and simulated times compared on representative programs.

#include <cstdio>
#include <random>

#include "workloads/harness.h"
#include "workloads/programs.h"
#include "workloads/workloads.h"

namespace {

struct Config {
  const char* label;
  diablo::CompileOptions options;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  configs.push_back({"all optimizations", {}});
  {
    diablo::CompileOptions o;
    o.optimize.range_elimination = false;
    configs.push_back({"no range elimination", o});
  }
  {
    diablo::CompileOptions o;
    o.optimize.rule16_constant_key = false;
    configs.push_back({"no rule 16 (const keys)", o});
  }
  {
    diablo::CompileOptions o;
    o.optimize.rule17_unique_key = false;
    configs.push_back({"no rule 17 (unique keys)", o});
  }
  {
    diablo::CompileOptions o;
    o.optimize.cse_array_reads = false;
    configs.push_back({"no CSE (array reads)", o});
  }
  {
    diablo::CompileOptions o;
    o.enable_optimizer = false;
    configs.push_back({"optimizer off", o});
  }
  return configs;
}

}  // namespace

namespace {

/// Rule 17's showcase (§4): an elementwise increment whose group-by key
/// is the array's own (unique) index.
diablo::bench::ProgramSpec VectorIncrementSpec() {
  diablo::bench::ProgramSpec spec;
  spec.name = "vector_increment";
  spec.source = R"(
    for i = 0, n - 1 do
      V[i] += W[i];
  )";
  spec.make_inputs = [](int64_t n, std::mt19937_64& rng) -> diablo::Bindings {
    return {{"V", diablo::bench::RandomDoubleVector(n, 10, rng)},
            {"W", diablo::bench::RandomDoubleVector(n, 10, rng)},
            {"n", diablo::runtime::Value::MakeInt(n)}};
  };
  spec.array_outputs = {"V"};
  return spec;
}

}  // namespace

int main() {
  std::vector<diablo::bench::ProgramSpec> programs = {
      diablo::bench::GetProgram("conditional_sum"),
      diablo::bench::GetProgram("word_count"),
      VectorIncrementSpec(),
      diablo::bench::GetProgram("matrix_addition"),
      diablo::bench::GetProgram("matrix_multiplication"),
      diablo::bench::GetProgram("pagerank"),
      diablo::bench::GetProgram("kmeans"),
  };
  std::printf("AB1: optimizer ablation — shuffled stages / shuffled MB / "
              "simulated seconds\n\n");
  for (const auto& spec : programs) {
    std::mt19937_64 rng(11);
    int64_t scale = 0;
    if (spec.name == "matrix_addition") scale = 48;
    else if (spec.name == "matrix_multiplication") scale = 20;
    else if (spec.name == "pagerank") scale = 7;
    else if (spec.name == "kmeans") scale = 4000;
    else scale = 50000;
    const char* name = spec.name.c_str();
    diablo::Bindings inputs = spec.make_inputs(scale, rng);
    std::printf("%s (scale %lld):\n", name, static_cast<long long>(scale));
    for (const Config& config : Configs()) {
      auto stats = diablo::bench::RunDiablo(spec, inputs, {}, config.options);
      if (!stats.ok()) {
        std::printf("  %-26s ERROR: %s\n", config.label,
                    stats.status().ToString().c_str());
        continue;
      }
      std::printf("  %-26s %4lld shuffles  %8.2f MB  %9.4f s\n",
                  config.label, static_cast<long long>(stats->shuffles),
                  static_cast<double>(stats->shuffle_bytes) / (1024 * 1024),
                  stats->simulated_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "Rule 17 and range elimination remove whole shuffles; Rule 16 turns\n"
      "scalar aggregations into total reductions. With the optimizer off,\n"
      "every translated update pays its full group-by.\n");
  return 0;
}
