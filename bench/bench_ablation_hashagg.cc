// Ablation AB7 — hash-based shuffle aggregation and the persistent
// worker pool (EngineConfig::hash_aggregation / persistent_pool). Four
// measurements:
//   1. a reduceByKey micro at >= 2M rows: the open-addressing
//      KeyedAccumulator with memoized key hashes against the ordered
//      std::map aggregation path, outputs compared byte-for-byte,
//   2. a groupByKey + join micro at the same scale,
//   3. the persistent work-stealing pool against spawn-per-wave threads
//      on an iterative multi-wave pipeline (host_threads = 4),
//   4. the Figure-3 workloads compiled by DIABLO, hash vs ordered, plus
//      a fault-injected hash run that must stay bit-identical.
//
// Usage: bench_ablation_hashagg [reps] [rows]   (defaults: 3, 2000000)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "runtime/engine.h"
#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

using diablo::StatusOr;
using diablo::runtime::BinOp;
using diablo::runtime::Dataset;
using diablo::runtime::Engine;
using diablo::runtime::EngineConfig;
using diablo::runtime::Value;
using diablo::runtime::ValueVec;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ValueVec KeyedRows(int64_t n, int64_t keys) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(Value::MakeInt((i * 2654435761LL) % keys),
                                   Value::MakeDouble(i * 0.25)));
  }
  return rows;
}

/// Times `body` best-of-`reps` against a fresh engine per rep; stores the
/// last output for the byte-identity check.
double TimeBody(const EngineConfig& config, int reps, const char* what,
                const std::function<StatusOr<ValueVec>(Engine&)>& body,
                ValueVec* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Engine engine(config);
    double t0 = Now();
    auto result = body(engine);
    double dt = Now() - t0;
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (dt < best) best = dt;
    if (out != nullptr) *out = *result;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  const int64_t n = argc > 2 ? std::atoll(argv[2]) : 2000000;
  const int64_t keys = n / 8;

  std::printf(
      "AB7: hash aggregation + persistent pool ablation "
      "(hash_aggregation / persistent_pool on/off)\n\n");

  EngineConfig hash_config;
  hash_config.hash_aggregation = true;
  EngineConfig ordered_config;
  ordered_config.hash_aggregation = false;
  ordered_config.persistent_pool = false;

  bool all_equal = true;

  // --- 1. reduceByKey micro ----------------------------------------------
  {
    ValueVec rows = KeyedRows(n, keys);
    auto body = [&rows](Engine& engine) -> StatusOr<ValueVec> {
      Dataset ds = engine.Parallelize(rows);
      DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(ds, BinOp::kAdd));
      return engine.Collect(sums);
    };
    ValueVec hash_out, ordered_out;
    const double hash_s = TimeBody(hash_config, reps, "reduceByKey", body,
                                   &hash_out);
    const double ordered_s = TimeBody(ordered_config, reps, "reduceByKey",
                                      body, &ordered_out);
    const bool equal = hash_out == ordered_out;
    all_equal = all_equal && equal;
    std::printf("reduceByKey, %lld rows, %lld keys, best of %d\n",
                static_cast<long long>(n), static_cast<long long>(keys), reps);
    std::printf("  ordered (hash_aggregation=0): %8.3f s\n", ordered_s);
    std::printf("  hash    (hash_aggregation=1): %8.3f s\n", hash_s);
    std::printf("  speedup:                      %8.2fx   identical: %s\n\n",
                ordered_s / hash_s, equal ? "yes" : "NO");
  }

  // --- 2. groupByKey + join micro ----------------------------------------
  {
    ValueVec rows = KeyedRows(n, keys);
    auto body = [&rows](Engine& engine) -> StatusOr<ValueVec> {
      Dataset ds = engine.Parallelize(rows);
      DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(ds, BinOp::kAdd));
      DIABLO_ASSIGN_OR_RETURN(Dataset grouped, engine.GroupByKey(ds));
      DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(grouped, sums));
      DIABLO_ASSIGN_OR_RETURN(int64_t count, engine.Count(joined));
      return ValueVec{Value::MakeInt(count)};
    };
    ValueVec hash_out, ordered_out;
    const double hash_s = TimeBody(hash_config, reps, "groupBy+join", body,
                                   &hash_out);
    const double ordered_s = TimeBody(ordered_config, reps, "groupBy+join",
                                      body, &ordered_out);
    const bool equal = hash_out == ordered_out;
    all_equal = all_equal && equal;
    std::printf("groupByKey + join, %lld rows, best of %d\n",
                static_cast<long long>(n), reps);
    std::printf("  ordered: %8.3f s\n  hash:    %8.3f s\n", ordered_s, hash_s);
    std::printf("  speedup: %8.2fx   identical: %s\n\n", ordered_s / hash_s,
                equal ? "yes" : "NO");
  }

  // --- 3. persistent pool vs spawn-per-wave ------------------------------
  {
    // An iterative pipeline: many short task waves, which is exactly
    // where per-wave thread spawn/join overhead dominates.
    const int iters = 64;
    ValueVec rows = KeyedRows(n / 100, 500);
    auto body = [&rows, iters](Engine& engine) -> StatusOr<ValueVec> {
      Dataset cur = engine.Parallelize(rows);
      for (int iter = 0; iter < iters; ++iter) {
        DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                                engine.ReduceByKey(cur, BinOp::kAdd));
        DIABLO_ASSIGN_OR_RETURN(
            cur, engine.MapValues(sums, [](const Value& v) -> StatusOr<Value> {
              return Value::MakeDouble(v.AsDouble() * 0.5);
            }));
      }
      return engine.Collect(cur);
    };
    EngineConfig pool_config = hash_config;
    pool_config.host_threads = 4;
    pool_config.persistent_pool = true;
    EngineConfig spawn_config = pool_config;
    spawn_config.persistent_pool = false;
    ValueVec pool_out, spawn_out;
    const double pool_s = TimeBody(pool_config, reps, "pool", body, &pool_out);
    const double spawn_s = TimeBody(spawn_config, reps, "spawn", body,
                                    &spawn_out);
    const bool equal = pool_out == spawn_out;
    all_equal = all_equal && equal;
    std::printf("%d-iteration reduceByKey loop, %lld rows, host_threads=4\n",
                iters, static_cast<long long>(n / 100));
    std::printf("  spawn-per-wave (persistent_pool=0): %8.3f s\n", spawn_s);
    std::printf("  worker pool    (persistent_pool=1): %8.3f s\n", pool_s);
    std::printf("  speedup:                            %8.2fx   identical: "
                "%s\n\n",
                spawn_s / pool_s, equal ? "yes" : "NO");
  }

  // --- 4. Figure-3 workloads + fault-injected hash run -------------------
  std::printf("%-24s %10s %10s %8s %8s %8s\n", "workload", "ordered s",
              "hash s", "speedup", "match", "faulty");
  for (const char* name :
       {"word_count", "group_by", "pagerank", "matrix_multiplication"}) {
    const auto& spec = diablo::bench::GetProgram(name);
    std::mt19937_64 rng(11);
    int64_t scale = 0;
    if (spec.name == "matrix_multiplication") scale = 20;
    else if (spec.name == "pagerank") scale = 7;
    else scale = 50000;
    diablo::Bindings inputs = spec.make_inputs(scale, rng);
    double best_hash = 1e300, best_ordered = 1e300;
    StatusOr<diablo::bench::RunStats> hash_stats =
        diablo::Status::RuntimeError("not run");
    StatusOr<diablo::bench::RunStats> ordered_stats =
        diablo::Status::RuntimeError("not run");
    for (int r = 0; r < reps; ++r) {
      hash_stats = diablo::bench::RunDiablo(spec, inputs, hash_config);
      if (hash_stats.ok() && hash_stats->wall_seconds < best_hash) {
        best_hash = hash_stats->wall_seconds;
      }
      ordered_stats = diablo::bench::RunDiablo(spec, inputs, ordered_config);
      if (ordered_stats.ok() && ordered_stats->wall_seconds < best_ordered) {
        best_ordered = ordered_stats->wall_seconds;
      }
    }
    if (!hash_stats.ok() || !ordered_stats.ok()) {
      std::printf("%-24s ERROR: %s\n", name,
                  (!hash_stats.ok() ? hash_stats : ordered_stats)
                      .status()
                      .ToString()
                      .c_str());
      all_equal = false;
      continue;
    }
    // Hash path under fault injection must still match bit-for-bit.
    EngineConfig faulty_config = hash_config;
    faulty_config.faults.seed = 29;
    faulty_config.faults.task_failure_rate = 0.08;
    faulty_config.faults.max_task_attempts = 10;
    auto faulty_stats = diablo::bench::RunDiablo(spec, inputs, faulty_config);
    const bool equal = hash_stats->output == ordered_stats->output;
    const bool faulty_equal =
        faulty_stats.ok() && faulty_stats->output == hash_stats->output;
    all_equal = all_equal && equal && faulty_equal;
    std::printf("%-24s %10.4f %10.4f %7.2fx %8s %8s\n", name, best_ordered,
                best_hash, best_ordered / best_hash, equal ? "yes" : "NO",
                faulty_equal ? "yes" : "NO");
  }

  std::printf(
      "\nThe accumulator hashes each key once at the shuffle scatter and\n"
      "probes with the carried hash; one final sort per partition keeps\n"
      "the output order of the ordered-map path.\n");
  if (!all_equal) {
    std::fprintf(stderr, "AB7 FAILED: outputs diverged\n");
    return 1;
  }
  return 0;
}
