#include "workloads/harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/strings.h"
#include "runtime/array.h"

namespace diablo::bench {

using runtime::BinOp;
using runtime::Dataset;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;

namespace {

Value IV(int64_t v) { return Value::MakeInt(v); }
Value DV(double v) { return Value::MakeDouble(v); }

/// Sorted bag of the rows of `ds` (driver-side), as the canonical output
/// form for arrays.
StatusOr<Value> CollectSorted(Engine& engine, const Dataset& ds) {
  DIABLO_ASSIGN_OR_RETURN(ValueVec rows, engine.Collect(ds));
  std::sort(rows.begin(), rows.end());
  return Value::MakeBag(std::move(rows));
}

const Value& Input(const Bindings& inputs, const std::string& name) {
  static const Value kUnit;
  auto it = inputs.find(name);
  return it == inputs.end() ? kUnit : it->second;
}

Dataset LoadArray(Engine& engine, const Bindings& inputs,
                  const std::string& name) {
  const Value& v = Input(inputs, name);
  return engine.Parallelize(v.is_bag() ? v.bag() : ValueVec{});
}

/// Strips (index, value) pairs to values: the paper's hand-written Spark
/// code works on RDD[T], not on sparse arrays.
StatusOr<Dataset> Values(Engine& engine, const Dataset& ds,
                         const std::string& label) {
  return engine.Map(
      ds,
      [](const Value& row) -> StatusOr<Value> { return row.tuple()[1]; },
      label);
}

// ------------------------ per-program hand-written code ---------------------

StatusOr<Value> HwConditionalSum(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(Dataset v,
                          Values(engine, LoadArray(engine, inputs, "V"), "V"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset filtered,
      engine.Filter(v, [](const Value& x) -> StatusOr<bool> {
        return x.ToDouble() < 100.0;
      }));
  DIABLO_ASSIGN_OR_RETURN(
      std::optional<Value> sum,
      engine.Reduce(filtered, [](const Value& a, const Value& b) {
        return runtime::EvalBinOp(BinOp::kAdd, a, b);
      }));
  return sum.has_value() ? *sum : DV(0);
}

StatusOr<Value> HwEqual(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(Dataset v,
                          Values(engine, LoadArray(engine, inputs, "V"), "V"));
  DIABLO_ASSIGN_OR_RETURN(Value x, engine.First(v));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset eq, engine.Map(v, [x](const Value& w) -> StatusOr<Value> {
        return Value::MakeBool(w == x);
      }));
  DIABLO_ASSIGN_OR_RETURN(
      std::optional<Value> all,
      engine.Reduce(eq, [](const Value& a, const Value& b) {
        return runtime::EvalBinOp(BinOp::kAnd, a, b);
      }));
  return all.has_value() ? *all : Value::MakeBool(true);
}

StatusOr<Value> HwStringMatch(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(
      Dataset words,
      Values(engine, LoadArray(engine, inputs, "words"), "words"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset hit, engine.Map(words, [](const Value& w) -> StatusOr<Value> {
        const std::string& s = w.AsString();
        return Value::MakeBool(s == "key1" || s == "key2" || s == "key3");
      }));
  DIABLO_ASSIGN_OR_RETURN(
      std::optional<Value> any,
      engine.Reduce(hit, [](const Value& a, const Value& b) {
        return runtime::EvalBinOp(BinOp::kOr, a, b);
      }));
  return any.has_value() ? *any : Value::MakeBool(false);
}

StatusOr<Value> HwWordCount(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(
      Dataset words,
      Values(engine, LoadArray(engine, inputs, "words"), "words"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset ones, engine.Map(words, [](const Value& w) -> StatusOr<Value> {
        return Value::MakePair(w, IV(1));
      }));
  DIABLO_ASSIGN_OR_RETURN(Dataset counts,
                          engine.ReduceByKey(ones, BinOp::kAdd));
  return CollectSorted(engine, counts);
}

StatusOr<Value> HwHistogram(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(Dataset pixels,
                          Values(engine, LoadArray(engine, inputs, "P"), "P"));
  Value red_histogram;
  for (const char* channel : {"red", "green", "blue"}) {
    std::string field = channel;
    DIABLO_ASSIGN_OR_RETURN(
        Dataset keyed,
        engine.Map(pixels, [field](const Value& p) -> StatusOr<Value> {
          const Value* c = p.FindField(field);
          if (c == nullptr) return Status::RuntimeError("missing channel");
          return Value::MakePair(*c, IV(1));
        }, StrCat("hist.", field)));
    DIABLO_ASSIGN_OR_RETURN(Dataset counts,
                            engine.ReduceByKey(keyed, BinOp::kAdd));
    // All three channels are computed (and costed); the red one is the
    // primary output compared against DIABLO's R.
    if (field == "red") {
      DIABLO_ASSIGN_OR_RETURN(red_histogram, CollectSorted(engine, counts));
    }
  }
  return red_histogram;
}

StatusOr<Value> HwLinearRegression(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(Dataset points,
                          Values(engine, LoadArray(engine, inputs, "P"), "P"));
  double n = Input(inputs, "n").ToDouble();
  auto sum_of = [&](const std::function<double(double, double)>& f,
                    const std::string& label) -> StatusOr<double> {
    DIABLO_ASSIGN_OR_RETURN(
        Dataset mapped,
        engine.Map(points, [f](const Value& p) -> StatusOr<Value> {
          return DV(f(p.tuple()[0].ToDouble(), p.tuple()[1].ToDouble()));
        }, label));
    DIABLO_ASSIGN_OR_RETURN(
        std::optional<Value> s,
        engine.Reduce(mapped, [](const Value& a, const Value& b) {
          return runtime::EvalBinOp(BinOp::kAdd, a, b);
        }));
    return s.has_value() ? s->ToDouble() : 0.0;
  };
  DIABLO_ASSIGN_OR_RETURN(double sx,
                          sum_of([](double x, double) { return x; }, "sx"));
  DIABLO_ASSIGN_OR_RETURN(double sy,
                          sum_of([](double, double y) { return y; }, "sy"));
  double x_bar = sx / n, y_bar = sy / n;
  DIABLO_ASSIGN_OR_RETURN(
      double xx, sum_of([x_bar](double x, double) {
        return (x - x_bar) * (x - x_bar);
      }, "xx"));
  DIABLO_ASSIGN_OR_RETURN(
      double xy, sum_of([x_bar, y_bar](double x, double y) {
        return (x - x_bar) * (y - y_bar);
      }, "xy"));
  double slope = xy / xx;
  double intercept = y_bar - slope * x_bar;
  (void)intercept;  // computed (and costed); slope is the compared output
  return DV(slope);
}

StatusOr<Value> HwGroupBy(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(Dataset v,
                          Values(engine, LoadArray(engine, inputs, "V"), "V"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset keyed, engine.Map(v, [](const Value& kv) -> StatusOr<Value> {
        return Value::MakePair(kv.tuple()[0], kv.tuple()[1]);
      }));
  DIABLO_ASSIGN_OR_RETURN(Dataset sums, engine.ReduceByKey(keyed, BinOp::kAdd));
  return CollectSorted(engine, sums);
}

StatusOr<Value> HwMatrixAddition(Engine& engine, const Bindings& inputs) {
  Dataset m = LoadArray(engine, inputs, "M");
  Dataset n = LoadArray(engine, inputs, "N");
  DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(m, n, "add.join"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset sum, engine.Map(joined, [](const Value& row) -> StatusOr<Value> {
        const Value& pair = row.tuple()[1];
        return Value::MakePair(
            row.tuple()[0],
            DV(pair.tuple()[0].ToDouble() + pair.tuple()[1].ToDouble()));
      }));
  return CollectSorted(engine, sum);
}

StatusOr<Value> HwMatrixMultiplication(Engine& engine,
                                       const Bindings& inputs) {
  Dataset m = LoadArray(engine, inputs, "M");
  Dataset n = LoadArray(engine, inputs, "N");
  // M.map{case ((i,j),m) => (j,(i,m))}.join(N.map{case ((i,j),n) =>
  // (i,(j,n))}).map{case (k,((i,m),(j,n))) => ((i,j),m*n)}.reduceByKey(+).
  DIABLO_ASSIGN_OR_RETURN(
      Dataset left, engine.Map(m, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(
            row.tuple()[0].tuple()[1],
            Value::MakePair(row.tuple()[0].tuple()[0], row.tuple()[1]));
      }, "mm.keyM"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset right, engine.Map(n, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(
            row.tuple()[0].tuple()[0],
            Value::MakePair(row.tuple()[0].tuple()[1], row.tuple()[1]));
      }, "mm.keyN"));
  DIABLO_ASSIGN_OR_RETURN(Dataset joined, engine.Join(left, right, "mm.join"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset partial,
      engine.Map(joined, [](const Value& row) -> StatusOr<Value> {
        const Value& p = row.tuple()[1];
        return Value::MakePair(
            Value::MakeTuple({p.tuple()[0].tuple()[0],
                              p.tuple()[1].tuple()[0]}),
            DV(p.tuple()[0].tuple()[1].ToDouble() *
               p.tuple()[1].tuple()[1].ToDouble()));
      }, "mm.multiply"));
  DIABLO_ASSIGN_OR_RETURN(Dataset result,
                          engine.ReduceByKey(partial, BinOp::kAdd));
  return CollectSorted(engine, result);
}

StatusOr<Value> HwPageRank(Engine& engine, const Bindings& inputs) {
  Dataset e = LoadArray(engine, inputs, "E");
  int64_t vertices = Input(inputs, "N").AsInt();
  int64_t num_steps = Input(inputs, "num_steps").AsInt();
  const double b = 0.85;
  // links: src -> bag of dsts.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset edges, engine.Map(e, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(row.tuple()[0].tuple()[0],
                               row.tuple()[0].tuple()[1]);
      }, "pr.edges"));
  DIABLO_ASSIGN_OR_RETURN(Dataset links, engine.GroupByKey(edges, "pr.links"));
  // ranks: every vertex starts at 1/N.
  Dataset vertex_range = engine.Range(0, vertices - 1);
  DIABLO_ASSIGN_OR_RETURN(
      Dataset ranks,
      engine.Map(vertex_range, [vertices](const Value& i) -> StatusOr<Value> {
        return Value::MakePair(i, DV(1.0 / static_cast<double>(vertices)));
      }, "pr.init"));
  for (int64_t step = 0; step < num_steps; ++step) {
    DIABLO_ASSIGN_OR_RETURN(Dataset joined,
                            engine.Join(links, ranks, "pr.join"));
    DIABLO_ASSIGN_OR_RETURN(
        Dataset contribs,
        engine.FlatMap(joined, [](const Value& row) -> StatusOr<ValueVec> {
          const ValueVec& urls = row.tuple()[1].tuple()[0].bag();
          double rank = row.tuple()[1].tuple()[1].ToDouble();
          ValueVec out;
          out.reserve(urls.size());
          for (const Value& url : urls) {
            out.push_back(
                Value::MakePair(url, DV(rank / static_cast<double>(urls.size()))));
          }
          return out;
        }, "pr.contribs"));
    DIABLO_ASSIGN_OR_RETURN(Dataset summed,
                            engine.ReduceByKey(contribs, BinOp::kAdd));
    // ranks = (1-b)/N + b * contribution, for every vertex.
    DIABLO_ASSIGN_OR_RETURN(
        Dataset base,
        engine.Map(vertex_range, [vertices, b](const Value& i) -> StatusOr<Value> {
          return Value::MakePair(i, DV((1.0 - b) / static_cast<double>(vertices)));
        }, "pr.base"));
    DIABLO_ASSIGN_OR_RETURN(Dataset merged,
                            engine.CoGroup(base, summed, "pr.update"));
    DIABLO_ASSIGN_OR_RETURN(
        ranks,
        engine.FlatMap(merged, [b](const Value& row) -> StatusOr<ValueVec> {
          const ValueVec& bases = row.tuple()[1].tuple()[0].bag();
          const ValueVec& sums = row.tuple()[1].tuple()[1].bag();
          ValueVec out;
          if (bases.empty()) return out;  // not a vertex
          double r = bases[0].ToDouble();
          if (!sums.empty()) r += b * sums[0].ToDouble();
          out.push_back(Value::MakePair(row.tuple()[0], DV(r)));
          return out;
        }, "pr.newRanks"));
    // Under fault injection, persist the loop-carried ranks each step so
    // a lost partition replays at most one iteration, not the whole
    // chain back to pr.init (Spark jobs checkpoint iterative RDDs for
    // the same reason).
    if (engine.config().faults.enabled()) {
      DIABLO_ASSIGN_OR_RETURN(ranks, engine.Checkpoint(ranks, "pr.ckpt"));
    }
  }
  return CollectSorted(engine, ranks);
}

StatusOr<Value> HwKMeans(Engine& engine, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(Dataset points,
                          Values(engine, LoadArray(engine, inputs, "P"), "P"));
  // Broadcast the centroids (the paper's hand-written code keeps them in
  // each worker's memory).
  DIABLO_ASSIGN_OR_RETURN(ValueVec centroids,
                          engine.Collect(LoadArray(engine, inputs, "C")));
  std::sort(centroids.begin(), centroids.end());
  auto shared = std::make_shared<ValueVec>(std::move(centroids));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset assigned,
      engine.Map(points, [shared](const Value& p) -> StatusOr<Value> {
        double px = p.tuple()[0].ToDouble(), py = p.tuple()[1].ToDouble();
        double best = 0;
        Value best_j;
        bool first = true;
        for (const Value& kv : *shared) {
          const Value& c = kv.tuple()[1];
          double dx = px - c.tuple()[0].ToDouble();
          double dy = py - c.tuple()[1].ToDouble();
          double d = dx * dx + dy * dy;
          if (first || d < best) {
            best = d;
            best_j = kv.tuple()[0];
            first = false;
          }
        }
        return Value::MakePair(
            best_j, Value::MakeTuple({DV(px), DV(py), IV(1)}));
      }, "km.assign"));
  DIABLO_ASSIGN_OR_RETURN(Dataset sums,
                          engine.ReduceByKey(assigned, BinOp::kAdd));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset next, engine.Map(sums, [](const Value& row) -> StatusOr<Value> {
        const ValueVec& acc = row.tuple()[1].tuple();
        double cnt = acc[2].ToDouble();
        return Value::MakePair(
            row.tuple()[0], Value::MakeTuple({DV(acc[0].ToDouble() / cnt),
                                              DV(acc[1].ToDouble() / cnt)}));
      }, "km.centers"));
  return CollectSorted(engine, next);
}

StatusOr<Value> HwMatrixFactorization(Engine& engine,
                                      const Bindings& inputs) {
  Dataset r = LoadArray(engine, inputs, "R");
  Dataset p0 = LoadArray(engine, inputs, "P0");
  Dataset q0 = LoadArray(engine, inputs, "Q0");
  double a = Input(inputs, "a").ToDouble();
  double b = Input(inputs, "b").ToDouble();
  // pq = P0 × Q0 restricted to R's support, then err = R - pq.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset p_by_k, engine.Map(p0, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(
            row.tuple()[0].tuple()[1],
            Value::MakePair(row.tuple()[0].tuple()[0], row.tuple()[1]));
      }, "mf.keyP"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset q_by_k, engine.Map(q0, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(
            row.tuple()[0].tuple()[0],
            Value::MakePair(row.tuple()[0].tuple()[1], row.tuple()[1]));
      }, "mf.keyQ"));
  DIABLO_ASSIGN_OR_RETURN(Dataset pq_join,
                          engine.Join(p_by_k, q_by_k, "mf.pq.join"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset pq_partial,
      engine.Map(pq_join, [](const Value& row) -> StatusOr<Value> {
        const Value& pr = row.tuple()[1];
        return Value::MakePair(
            Value::MakeTuple({pr.tuple()[0].tuple()[0],
                              pr.tuple()[1].tuple()[0]}),
            DV(pr.tuple()[0].tuple()[1].ToDouble() *
               pr.tuple()[1].tuple()[1].ToDouble()));
      }, "mf.pq.mul"));
  DIABLO_ASSIGN_OR_RETURN(Dataset pq,
                          engine.ReduceByKey(pq_partial, BinOp::kAdd));
  DIABLO_ASSIGN_OR_RETURN(Dataset r_pq, engine.Join(r, pq, "mf.err.join"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset err, engine.Map(r_pq, [](const Value& row) -> StatusOr<Value> {
        const Value& pr = row.tuple()[1];
        return Value::MakePair(row.tuple()[0],
                               DV(pr.tuple()[0].ToDouble() -
                                  pr.tuple()[1].ToDouble()));
      }, "mf.err"));
  // P[i,k] += sum_j a*(2*err[i,j]*Q0[k,j]) - cnt_i * a*b*P0[i,k], where
  // cnt_i is the number of provided R entries in row i (matching the
  // loop semantics). Symmetrically for Q.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset err_by_j, engine.Map(err, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(
            row.tuple()[0].tuple()[1],
            Value::MakePair(row.tuple()[0].tuple()[0], row.tuple()[1]));
      }, "mf.errByJ"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset q_by_j, engine.Map(q0, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(
            row.tuple()[0].tuple()[1],
            Value::MakePair(row.tuple()[0].tuple()[0], row.tuple()[1]));
      }, "mf.qByJ"));
  DIABLO_ASSIGN_OR_RETURN(Dataset eq_join,
                          engine.Join(err_by_j, q_by_j, "mf.dp.join"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset dp,
      engine.Map(eq_join, [a](const Value& row) -> StatusOr<Value> {
        const Value& pr = row.tuple()[1];
        // ((i,k), 2*a*err*q).
        return Value::MakePair(
            Value::MakeTuple({pr.tuple()[0].tuple()[0],
                              pr.tuple()[1].tuple()[0]}),
            DV(2 * a * pr.tuple()[0].tuple()[1].ToDouble() *
               pr.tuple()[1].tuple()[1].ToDouble()));
      }, "mf.dp"));
  DIABLO_ASSIGN_OR_RETURN(Dataset dp_sum, engine.ReduceByKey(dp, BinOp::kAdd));
  // Row counts of err.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset row_counts_src,
      engine.Map(err, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(row.tuple()[0].tuple()[0], IV(1));
      }, "mf.rowCnt"));
  DIABLO_ASSIGN_OR_RETURN(Dataset row_counts,
                          engine.ReduceByKey(row_counts_src, BinOp::kAdd));
  // P update: key P0 by row, join with counts, apply regularization, then
  // merge the dp contributions.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset p_by_row, engine.Map(p0, [](const Value& row) -> StatusOr<Value> {
        return Value::MakePair(row.tuple()[0].tuple()[0], row);
      }, "mf.pByRow"));
  DIABLO_ASSIGN_OR_RETURN(Dataset p_cnt,
                          engine.CoGroup(p_by_row, row_counts, "mf.pCnt"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset p_reg,
      engine.FlatMap(p_cnt, [a, b](const Value& row) -> StatusOr<ValueVec> {
        const ValueVec& cells = row.tuple()[1].tuple()[0].bag();
        const ValueVec& counts = row.tuple()[1].tuple()[1].bag();
        double cnt = counts.empty() ? 0.0 : counts[0].ToDouble();
        ValueVec out;
        for (const Value& cell : cells) {
          double v = cell.tuple()[1].ToDouble();
          out.push_back(
              Value::MakePair(cell.tuple()[0], DV(v - cnt * a * b * v)));
        }
        return out;
      }, "mf.pReg"));
  DIABLO_ASSIGN_OR_RETURN(Dataset p_new,
                          engine.CoGroup(p_reg, dp_sum, "mf.pNew"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset p_final,
      engine.FlatMap(p_new, [](const Value& row) -> StatusOr<ValueVec> {
        const ValueVec& regs = row.tuple()[1].tuple()[0].bag();
        const ValueVec& deltas = row.tuple()[1].tuple()[1].bag();
        ValueVec out;
        if (regs.empty()) return out;
        double v = regs[0].ToDouble();
        if (!deltas.empty()) v += deltas[0].ToDouble();
        out.push_back(Value::MakePair(row.tuple()[0], DV(v)));
        return out;
      }, "mf.pFinal"));
  return CollectSorted(engine, p_final);
}

}  // namespace

StatusOr<Value> RunHandwritten(const std::string& name, Engine& engine,
                               const Bindings& inputs) {
  if (name == "conditional_sum") return HwConditionalSum(engine, inputs);
  if (name == "equal") return HwEqual(engine, inputs);
  if (name == "string_match") return HwStringMatch(engine, inputs);
  if (name == "word_count") return HwWordCount(engine, inputs);
  if (name == "histogram") return HwHistogram(engine, inputs);
  if (name == "linear_regression") return HwLinearRegression(engine, inputs);
  if (name == "group_by") return HwGroupBy(engine, inputs);
  if (name == "matrix_addition") return HwMatrixAddition(engine, inputs);
  if (name == "matrix_multiplication") {
    return HwMatrixMultiplication(engine, inputs);
  }
  if (name == "pagerank") return HwPageRank(engine, inputs);
  if (name == "kmeans") return HwKMeans(engine, inputs);
  if (name == "matrix_factorization") {
    return HwMatrixFactorization(engine, inputs);
  }
  return Status::InvalidArgument(
      StrCat("no hand-written implementation for '", name, "'"));
}

StatusOr<RunStats> Measure(
    const runtime::EngineConfig& config,
    const std::function<StatusOr<Value>(Engine&)>& body) {
  Engine engine(config);
  auto start = std::chrono::steady_clock::now();
  DIABLO_ASSIGN_OR_RETURN(Value output, body(engine));
  auto end = std::chrono::steady_clock::now();
  RunStats stats;
  stats.output = std::move(output);
  stats.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  stats.simulated_seconds =
      engine.metrics().SimulatedSeconds(config.cluster);
  stats.shuffles = engine.metrics().num_wide_stages();
  stats.shuffle_bytes = engine.metrics().total_shuffle_bytes();
  stats.work_units = engine.metrics().total_work();
  stats.attempts = engine.metrics().total_attempts();
  stats.recomputed_partitions = engine.metrics().total_recomputed_partitions();
  stats.recovery_seconds = engine.metrics().total_recovery_seconds();
  stats.fault_free_seconds =
      engine.metrics().SimulatedFaultFreeSeconds(config.cluster);
  return stats;
}

StatusOr<RunStats> RunDiablo(const ProgramSpec& spec, const Bindings& inputs,
                             const runtime::EngineConfig& config,
                             const CompileOptions& options) {
  DIABLO_ASSIGN_OR_RETURN(CompiledProgram program,
                          Compile(spec.source, options));
  return Measure(config, [&](Engine& engine) -> StatusOr<Value> {
    DIABLO_ASSIGN_OR_RETURN(ProgramRun run, Run(program, &engine, inputs));
    if (!spec.scalar_outputs.empty()) {
      return run.Scalar(spec.scalar_outputs[0]);
    }
    if (!spec.array_outputs.empty()) {
      return run.Array(spec.array_outputs[0]);
    }
    return Value::MakeUnit();
  });
}

StatusOr<RunStats> MeasureHandwritten(const ProgramSpec& spec,
                                      const Bindings& inputs,
                                      const runtime::EngineConfig& config) {
  return Measure(config, [&](Engine& engine) -> StatusOr<Value> {
    return RunHandwritten(spec.name, engine, inputs);
  });
}

std::string Mb(int64_t bytes) {
  return StrCat(bytes / (1024 * 1024), ".",
                (bytes % (1024 * 1024)) * 10 / (1024 * 1024), " MB");
}

void RunFigurePanel(const std::string& panel, const std::string& program,
                    const std::vector<int64_t>& sizes,
                    const runtime::EngineConfig& config) {
  const ProgramSpec& spec = GetProgram(program);
  std::printf("%s — %s\n", panel.c_str(), program.c_str());
  std::printf("  %10s %10s | %12s %12s %8s | %9s %9s | %8s\n", "size",
              "input(MB)", "hand(s)", "diablo(s)", "ratio", "hw.shfl",
              "dia.shfl", "outputs");
  for (int64_t n : sizes) {
    std::mt19937_64 rng(static_cast<uint64_t>(n) * 2654435761u + 7);
    Bindings inputs = spec.make_inputs(n, rng);
    int64_t bytes = 0;
    for (const auto& [name, value] : inputs) {
      if (value.is_bag()) bytes += value.SerializedBytes();
    }
    auto hw = MeasureHandwritten(spec, inputs, config);
    auto dia = RunDiablo(spec, inputs, config);
    if (!hw.ok() || !dia.ok()) {
      std::printf("  %10lld ERROR: %s%s\n", static_cast<long long>(n),
                  hw.ok() ? "" : hw.status().ToString().c_str(),
                  dia.ok() ? "" : dia.status().ToString().c_str());
      continue;
    }
    const char* agree = "n/a";
    if (hw->output.is_bag() && dia->output.is_bag()) {
      agree = runtime::BagAlmostEquals(hw->output, dia->output, 1e-6)
                  ? "agree"
                  : "DIFFER";
    } else if (!hw->output.is_unit() && !dia->output.is_unit()) {
      agree = runtime::AlmostEquals(hw->output, dia->output, 1e-6)
                  ? "agree"
                  : "DIFFER";
    }
    std::printf("  %10lld %10.2f | %12.4f %12.4f %7.2fx | %9lld %9lld | "
                "%8s\n",
                static_cast<long long>(n),
                static_cast<double>(bytes) / (1024 * 1024),
                hw->simulated_seconds, dia->simulated_seconds,
                hw->simulated_seconds > 0
                    ? dia->simulated_seconds / hw->simulated_seconds
                    : 0.0,
                static_cast<long long>(hw->shuffles),
                static_cast<long long>(dia->shuffles), agree);
  }
  std::printf("\n");
}

}  // namespace diablo::bench
