#ifndef DIABLO_BENCH_WORKLOADS_PROGRAMS_H_
#define DIABLO_BENCH_WORKLOADS_PROGRAMS_H_

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "diablo/diablo.h"

namespace diablo::bench {

/// One benchmark program from the paper's evaluation (§6, Appendix B):
/// its loop-language source, an input generator parameterized by scale,
/// and the output variables to validate.
struct ProgramSpec {
  std::string name;
  std::string source;
  /// Builds the host bindings for a run of size `n` (program-specific
  /// meaning: element count, matrix dimension, vertex count, ...).
  std::function<Bindings(int64_t n, std::mt19937_64& rng)> make_inputs;
  std::vector<std::string> scalar_outputs;
  std::vector<std::string> array_outputs;
  /// Numeric tolerance when comparing against the reference interpreter
  /// (floating-point reductions reassociate).
  double tolerance = 1e-6;
};

/// The 12 programs of Figure 3 / Table 2, in paper order:
/// conditional_sum, equal, string_match, word_count, histogram,
/// linear_regression, group_by, matrix_addition, matrix_multiplication,
/// pagerank, kmeans, matrix_factorization.
const std::vector<ProgramSpec>& BenchmarkPrograms();

/// Looks up a benchmark program by name; aborts if absent.
const ProgramSpec& GetProgram(const std::string& name);

/// The 16 programs of Table 1 (translation-time comparison): the 12
/// above plus average, conditional_count, count, sum, equal_frequency,
/// pca. Only name and source are needed for compile timing.
struct Table1Entry {
  std::string name;
  std::string source;
};
const std::vector<Table1Entry>& Table1Programs();

}  // namespace diablo::bench

#endif  // DIABLO_BENCH_WORKLOADS_PROGRAMS_H_
