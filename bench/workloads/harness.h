#ifndef DIABLO_BENCH_WORKLOADS_HARNESS_H_
#define DIABLO_BENCH_WORKLOADS_HARNESS_H_

#include <functional>
#include <string>

#include "diablo/diablo.h"
#include "runtime/engine.h"
#include "workloads/programs.h"

namespace diablo::bench {

/// What one measured run reports.
struct RunStats {
  /// Simulated distributed run time under the engine's cluster model.
  double simulated_seconds = 0;
  /// Real wall-clock seconds on the host (single machine; informational).
  double wall_seconds = 0;
  int64_t shuffles = 0;
  int64_t shuffle_bytes = 0;
  int64_t work_units = 0;
  /// Fault-tolerance accounting (zero on fault-free configs): task
  /// attempts, partitions rebuilt from lineage, simulated seconds spent
  /// on recovery, and what the run would have cost with no faults
  /// (simulated_seconds == fault_free_seconds + recovery_seconds).
  int64_t attempts = 0;
  int64_t recomputed_partitions = 0;
  double recovery_seconds = 0;
  double fault_free_seconds = 0;
  /// Primary output, for cross-validation between systems.
  runtime::Value output;
};

/// Runs `body` against a fresh engine with `config`, returning cost-model
/// stats. `body` returns the primary output value.
StatusOr<RunStats> Measure(
    const runtime::EngineConfig& config,
    const std::function<StatusOr<runtime::Value>(runtime::Engine&)>& body);

/// Runs a DIABLO-compiled benchmark program and reports its stats. The
/// output value is the first scalar output, or the collected first array
/// output.
StatusOr<RunStats> RunDiablo(const ProgramSpec& spec, const Bindings& inputs,
                             const runtime::EngineConfig& config,
                             const CompileOptions& options = {});

/// Hand-written engine implementation (Appendix B Spark code transcribed
/// to the engine API) for each Figure-3 program, by spec name. Returns an
/// error for programs without a hand-written counterpart.
StatusOr<runtime::Value> RunHandwritten(const std::string& name,
                                        runtime::Engine& engine,
                                        const Bindings& inputs);

/// Measure() wrapper around RunHandwritten.
StatusOr<RunStats> MeasureHandwritten(const ProgramSpec& spec,
                                      const Bindings& inputs,
                                      const runtime::EngineConfig& config);

/// Formats bytes as a human-readable MB figure.
std::string Mb(int64_t bytes);

/// Runs one Figure-3 panel: for each size, generate inputs, run the
/// hand-written and the DIABLO-translated versions, cross-check their
/// outputs, and print one series row (input MB, simulated seconds of
/// each, shuffle stages of each). This is the two-line plot of each
/// Figure 3 panel in textual form.
void RunFigurePanel(const std::string& panel, const std::string& program,
                    const std::vector<int64_t>& sizes,
                    const runtime::EngineConfig& config = {});

}  // namespace diablo::bench

#endif  // DIABLO_BENCH_WORKLOADS_HARNESS_H_
