#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/strings.h"

namespace diablo::bench {

namespace {

Value IV(int64_t v) { return Value::MakeInt(v); }
Value DV(double v) { return Value::MakeDouble(v); }

double UniformDouble(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(rng);
}

}  // namespace

Value RandomDoubleVector(int64_t n, double hi, std::mt19937_64& rng) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(IV(i), DV(UniformDouble(rng, 0, hi))));
  }
  return Value::MakeBag(std::move(rows));
}

Value RandomStringVector(int64_t n, int distinct, std::mt19937_64& rng) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t id = static_cast<int64_t>(rng() % static_cast<uint64_t>(distinct));
    rows.push_back(
        Value::MakePair(IV(i), Value::MakeString(StrCat("key", id))));
  }
  return Value::MakeBag(std::move(rows));
}

Value RandomPixelVector(int64_t n, std::mt19937_64& rng) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(
        IV(i), Value::MakeRecord({{"red", IV(static_cast<int64_t>(rng() % 256))},
                                  {"green", IV(static_cast<int64_t>(rng() % 256))},
                                  {"blue", IV(static_cast<int64_t>(rng() % 256))}})));
  }
  return Value::MakeBag(std::move(rows));
}

Value RegressionPoints(int64_t n, std::mt19937_64& rng) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double x = UniformDouble(rng, 0, 1000);
    double dx = UniformDouble(rng, 0, 10);
    rows.push_back(Value::MakePair(
        IV(i), Value::MakeTuple({DV(x + dx), DV(x - dx)})));
  }
  return Value::MakeBag(std::move(rows));
}

Value GroupByPairs(int64_t n, std::mt19937_64& rng) {
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  int64_t keys = std::max<int64_t>(1, n / 10);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(
        IV(i),
        Value::MakeTuple({IV(static_cast<int64_t>(rng() % static_cast<uint64_t>(keys))),
                          DV(UniformDouble(rng, 0, 10))})));
  }
  return Value::MakeBag(std::move(rows));
}

ZipfSampler::ZipfSampler(int64_t ranks, double s) {
  cdf_.reserve(static_cast<size_t>(ranks));
  double total = 0;
  for (int64_t r = 0; r < ranks; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

int64_t ZipfSampler::operator()(std::mt19937_64& rng) const {
  double u = UniformDouble(rng, 0, 1);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin());
}

Value ZipfPairs(int64_t n, int64_t keys, double s, std::mt19937_64& rng) {
  ZipfSampler zipf(keys, s);
  ValueVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Value::MakePair(IV(zipf(rng)), IV(1)));
  }
  return Value::MakeBag(std::move(rows));
}

Value RandomMatrix(int64_t rows, int64_t cols, std::mt19937_64& rng) {
  ValueVec out;
  out.reserve(static_cast<size_t>(rows * cols));
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out.push_back(Value::MakePair(Value::MakeTuple({IV(i), IV(j)}),
                                    DV(UniformDouble(rng, 0, 10))));
    }
  }
  return Value::MakeBag(std::move(out));
}

Value SparseRandomMatrix(int64_t rows, int64_t cols, double density,
                         std::mt19937_64& rng) {
  ValueVec out;
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (UniformDouble(rng, 0, 1) >= density) continue;
      out.push_back(Value::MakePair(
          Value::MakeTuple({IV(i), IV(j)}),
          DV(static_cast<double>(1 + static_cast<int64_t>(rng() % 5)))));
    }
  }
  return Value::MakeBag(std::move(out));
}

Value RmatGraph(int scale, int edges_per_vertex, std::mt19937_64& rng) {
  const int64_t vertices = int64_t{1} << scale;
  const int64_t edges = vertices * edges_per_vertex;
  // Kronecker quadrant probabilities a=0.30, b=0.25, c=0.25, d=0.20.
  std::set<std::pair<int64_t, int64_t>> seen;
  ValueVec out;
  std::uniform_real_distribution<double> uniform(0, 1);
  for (int64_t e = 0; e < edges; ++e) {
    int64_t i = 0, j = 0;
    for (int bit = 0; bit < scale; ++bit) {
      double p = uniform(rng);
      int quadrant = p < 0.30 ? 0 : (p < 0.55 ? 1 : (p < 0.80 ? 2 : 3));
      i = (i << 1) | (quadrant >> 1);
      j = (j << 1) | (quadrant & 1);
    }
    if (!seen.emplace(i, j).second) continue;
    out.push_back(Value::MakePair(Value::MakeTuple({IV(i), IV(j)}),
                                  Value::MakeBool(true)));
  }
  return Value::MakeBag(std::move(out));
}

Value GridPoints(int64_t n, int grid, std::mt19937_64& rng) {
  ValueVec out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t p = 0; p < n; ++p) {
    int64_t i = static_cast<int64_t>(rng() % static_cast<uint64_t>(grid));
    int64_t j = static_cast<int64_t>(rng() % static_cast<uint64_t>(grid));
    double x = static_cast<double>(i) * 2 + 1 + UniformDouble(rng, 0, 1);
    double y = static_cast<double>(j) * 2 + 1 + UniformDouble(rng, 0, 1);
    out.push_back(
        Value::MakePair(IV(p), Value::MakeTuple({DV(x), DV(y)})));
  }
  return Value::MakeBag(std::move(out));
}

Value GridCentroids(int grid) {
  ValueVec out;
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      out.push_back(Value::MakePair(
          IV(static_cast<int64_t>(i) * grid + j),
          Value::MakeTuple({DV(i * 2 + 1.2), DV(j * 2 + 1.2)})));
    }
  }
  return Value::MakeBag(std::move(out));
}

Value FactorMatrix(int64_t rows, int64_t cols, std::mt19937_64& rng) {
  ValueVec out;
  out.reserve(static_cast<size_t>(rows * cols));
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out.push_back(Value::MakePair(Value::MakeTuple({IV(i), IV(j)}),
                                    DV(UniformDouble(rng, 0, 1))));
    }
  }
  return Value::MakeBag(std::move(out));
}

}  // namespace diablo::bench
