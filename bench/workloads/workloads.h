#ifndef DIABLO_BENCH_WORKLOADS_WORKLOADS_H_
#define DIABLO_BENCH_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <random>
#include <vector>

#include "runtime/value.h"

namespace diablo::bench {

using runtime::Value;
using runtime::ValueVec;

/// Synthetic datasets matching the paper's workloads (§6). All return
/// sparse arrays: bags of (key, value) pairs.

/// Uniform random doubles in [0, hi).
Value RandomDoubleVector(int64_t n, double hi, std::mt19937_64& rng);

/// Random 4-character strings drawn from `distinct` different values.
Value RandomStringVector(int64_t n, int distinct, std::mt19937_64& rng);

/// Random RGB pixel records with components in [0, 256).
Value RandomPixelVector(int64_t n, std::mt19937_64& rng);

/// Linear-regression points (x + dx, x - dx), x in [0,1000), dx in [0,10).
Value RegressionPoints(int64_t n, std::mt19937_64& rng);

/// (key, value) pairs with ~10 duplicates per key on average.
Value GroupByPairs(int64_t n, std::mt19937_64& rng);

/// Zipf(s) rank sampler over {0, ..., ranks-1}: P(r) proportional to
/// 1/(r+1)^s, drawn by inverse CDF over precomputed cumulative weights.
/// s near 1 is the classic web-corpus skew; s = 2 is the heavy-hitter
/// regime where the top rank alone owns most draws.
class ZipfSampler {
 public:
  ZipfSampler(int64_t ranks, double s);
  int64_t operator()(std::mt19937_64& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Skewed aggregation input (AB10): (key, 1) pairs whose keys are
/// Zipf(s) ranks over `keys` ranks — a count aggregation whose heavy
/// hitters concentrate rows on a few keys.
Value ZipfPairs(int64_t n, int64_t keys, double s, std::mt19937_64& rng);

/// Dense random matrix as a sparse bag {((i,j),v)}, v in [0, 10).
Value RandomMatrix(int64_t rows, int64_t cols, std::mt19937_64& rng);

/// Sparse random matrix with the given density, integer values in [1,5]
/// (the paper's factorization input).
Value SparseRandomMatrix(int64_t rows, int64_t cols, double density,
                         std::mt19937_64& rng);

/// RMAT (recursive-matrix) graph edges as a boolean adjacency matrix
/// {((i,j),true)}; `scale` gives 2^scale vertices, with edges_per_vertex *
/// 2^scale edges, using the paper's Kronecker parameters
/// a=0.30 b=0.25 c=0.25 d=0.20.
Value RmatGraph(int scale, int edges_per_vertex, std::mt19937_64& rng);

/// KMeans points: uniform points inside a grid of `grid` x `grid` unit
/// squares with corners (i*2+1, j*2+1)..(i*2+2, j*2+2) — the paper's
/// layout with 100 latent centroids for grid=10.
Value GridPoints(int64_t n, int grid, std::mt19937_64& rng);

/// The paper's initial centroids (i*2+1.2, j*2+1.2), keyed 0..grid*grid-1.
Value GridCentroids(int grid);

/// Random factor matrix with values in [0,1), dense, as sparse bag.
Value FactorMatrix(int64_t rows, int64_t cols, std::mt19937_64& rng);

}  // namespace diablo::bench

#endif  // DIABLO_BENCH_WORKLOADS_WORKLOADS_H_
