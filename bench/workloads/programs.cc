#include "workloads/programs.h"

#include <cstdlib>

#include "workloads/workloads.h"

namespace diablo::bench {

namespace {

using runtime::Value;

// Loop-language sources, following Appendix B of the paper.

constexpr const char kConditionalSum[] = R"(
var sum: double = 0.0;
for v in V do
  if (v < 100.0)
    sum += v;
)";

constexpr const char kEqual[] = R"(
var eq: bool = true;
for v in V do
  eq := eq && v == x;
)";

constexpr const char kStringMatch[] = R"(
var c: bool = false;
for w in words do
  c := c || (w == "key1" || w == "key2" || w == "key3");
)";

constexpr const char kWordCount[] = R"(
var C: map[string,int] = map();
for w in words do
  C[w] += 1;
)";

constexpr const char kHistogram[] = R"(
var R: map[int,int] = map();
var G: map[int,int] = map();
var B: map[int,int] = map();
for p in P do {
  R[p.red] += 1;
  G[p.green] += 1;
  B[p.blue] += 1;
}
)";

constexpr const char kLinearRegression[] = R"(
var sum_x: double = 0.0;
var sum_y: double = 0.0;
var x_bar: double = 0.0;
var y_bar: double = 0.0;
var xx_bar: double = 0.0;
var yy_bar: double = 0.0;
var xy_bar: double = 0.0;
var slope: double = 0.0;
var intercept: double = 0.0;
for p in P do {
  sum_x += p._1;
  sum_y += p._2;
}
x_bar := sum_x / n;
y_bar := sum_y / n;
for p in P do {
  xx_bar += (p._1 - x_bar) * (p._1 - x_bar);
  yy_bar += (p._2 - y_bar) * (p._2 - y_bar);
  xy_bar += (p._1 - x_bar) * (p._2 - y_bar);
}
slope := xy_bar / xx_bar;
intercept := y_bar - slope * x_bar;
)";

constexpr const char kGroupBy[] = R"(
var C: map[int,double] = map();
for v in V do
  C[v._1] += v._2;
)";

constexpr const char kMatrixAddition[] = R"(
var R: matrix[double] = matrix();
for i = 0, n - 1 do
  for j = 0, m - 1 do
    R[i,j] := M[i,j] + N[i,j];
)";

constexpr const char kMatrixMultiplication[] = R"(
var R: matrix[double] = matrix();
for i = 0, n - 1 do
  for j = 0, n - 1 do {
    R[i,j] := 0.0;
    for k = 0, m - 1 do
      R[i,j] += M[i,k] * N[k,j];
  }
)";

constexpr const char kPageRank[] = R"(
var P: vector[double] = vector();
var C: vector[int] = vector();
var b: double = 0.85;
for i = 0, N - 1 do {
  C[i] := 0;
  P[i] := 1.0 / N;
}
for i = 0, N - 1 do
  for j = 0, N - 1 do
    if (E[i,j])
      C[i] += 1;
var k: int = 0;
while (k < num_steps) {
  var Q: matrix[double] = matrix();
  k += 1;
  for i = 0, N - 1 do
    for j = 0, N - 1 do
      if (E[i,j])
        Q[i,j] := P[i];
  for i = 0, N - 1 do
    P[i] := (1.0 - b) / N;
  for i = 0, N - 1 do
    for j = 0, N - 1 do
      P[i] += b * Q[j,i] / C[j];
}
)";

constexpr const char kKMeans[] = R"(
var closest: vector[(double,int)] = vector();
var sums: vector[(double,double,int)] = vector();
var C2: vector[(double,double)] = vector();
for i = 0, N - 1 do {
  for j = 0, K - 1 do
    closest[i] argmin= (
      (P[i]._1 - C[j]._1) * (P[i]._1 - C[j]._1) +
      (P[i]._2 - C[j]._2) * (P[i]._2 - C[j]._2), j);
  sums[closest[i]._2] += (P[i]._1, P[i]._2, 1);
}
for j = 0, K - 1 do
  C2[j] := (sums[j]._1 / sums[j]._3, sums[j]._2 / sums[j]._3);
)";

constexpr const char kMatrixFactorization[] = R"(
var pq: matrix[double] = matrix();
var err: matrix[double] = matrix();
for i = 0, n - 1 do
  for j = 0, m - 1 do {
    for k = 0, d - 1 do
      pq[i,j] += P0[i,k] * Q0[k,j];
    err[i,j] := R[i,j] - pq[i,j];
    for k = 0, d - 1 do {
      P[i,k] += a * (2.0 * err[i,j] * Q0[k,j] - b * P0[i,k]);
      Q[k,j] += a * (2.0 * err[i,j] * P0[i,k] - b * Q0[k,j]);
    }
  }
)";

// Table-1-only programs.

constexpr const char kAverage[] = R"(
var sum: double = 0.0;
var cnt: int = 0;
var avg: double = 0.0;
for v in V do {
  sum += v;
  cnt += 1;
}
avg := sum / cnt;
)";

constexpr const char kConditionalCount[] = R"(
var cnt: int = 0;
for v in V do
  if (v < 100.0)
    cnt += 1;
)";

constexpr const char kCount[] = R"(
var cnt: int = 0;
for v in V do
  cnt += 1;
)";

constexpr const char kSum[] = R"(
var sum: double = 0.0;
for v in V do
  sum += v;
)";

constexpr const char kEqualFrequency[] = R"(
var C: map[string,int] = map();
for w in words do
  C[w] += 1;
var mx: int = -1000000;
var mn: int = 1000000;
for c in C do {
  mx max= c;
  mn min= c;
}
var eqf: bool = false;
eqf := mx == mn;
)";

constexpr const char kPca[] = R"(
var sx: double = 0.0;
var sy: double = 0.0;
var mx: double = 0.0;
var my: double = 0.0;
var cxx: double = 0.0;
var cxy: double = 0.0;
var cyy: double = 0.0;
for p in P do {
  sx += p._1;
  sy += p._2;
}
mx := sx / n;
my := sy / n;
for p in P do {
  cxx += (p._1 - mx) * (p._1 - mx);
  cxy += (p._1 - mx) * (p._2 - my);
  cyy += (p._2 - my) * (p._2 - my);
}
)";

std::vector<ProgramSpec> BuildPrograms() {
  std::vector<ProgramSpec> specs;

  specs.push_back(
      {"conditional_sum", kConditionalSum,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"V", RandomDoubleVector(n, 200.0, rng)}};
       },
       {"sum"},
       {}});

  specs.push_back(
      {"equal", kEqual,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         (void)rng;
         ValueVec rows;
         for (int64_t i = 0; i < n; ++i) {
           rows.push_back(Value::MakePair(Value::MakeInt(i),
                                          Value::MakeString("key1")));
         }
         return {{"V", Value::MakeBag(std::move(rows))},
                 {"x", Value::MakeString("key1")}};
       },
       {"eq"},
       {}});

  specs.push_back(
      {"string_match", kStringMatch,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"words", RandomStringVector(n, 1000, rng)}};
       },
       {"c"},
       {}});

  specs.push_back(
      {"word_count", kWordCount,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"words", RandomStringVector(n, 1000, rng)}};
       },
       {},
       {"C"}});

  specs.push_back(
      {"histogram", kHistogram,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"P", RandomPixelVector(n, rng)}};
       },
       {},
       {"R", "G", "B"}});

  specs.push_back(
      {"linear_regression", kLinearRegression,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"P", RegressionPoints(n, rng)},
                 {"n", Value::MakeDouble(static_cast<double>(n))}};
       },
       {"slope", "intercept"},
       {}});

  specs.push_back(
      {"group_by", kGroupBy,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"V", GroupByPairs(n, rng)}};
       },
       {},
       {"C"}});

  specs.push_back(
      {"matrix_addition", kMatrixAddition,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"M", RandomMatrix(n, n, rng)},
                 {"N", RandomMatrix(n, n, rng)},
                 {"n", Value::MakeInt(n)},
                 {"m", Value::MakeInt(n)}};
       },
       {},
       {"R"}});

  specs.push_back(
      {"matrix_multiplication", kMatrixMultiplication,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         return {{"M", RandomMatrix(n, n, rng)},
                 {"N", RandomMatrix(n, n, rng)},
                 {"n", Value::MakeInt(n)},
                 {"m", Value::MakeInt(n)}};
       },
       {},
       {"R"},
       1e-5});

  specs.push_back(
      {"pagerank", kPageRank,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         // n is interpreted as the RMAT scale (2^n vertices).
         int scale = static_cast<int>(n);
         return {{"E", RmatGraph(scale, 10, rng)},
                 {"N", Value::MakeInt(int64_t{1} << scale)},
                 {"num_steps", Value::MakeInt(1)}};
       },
       {},
       {"P"},
       1e-6});

  specs.push_back(
      {"kmeans", kKMeans,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         constexpr int kGrid = 4;
         return {{"P", GridPoints(n, kGrid, rng)},
                 {"C", GridCentroids(kGrid)},
                 {"N", Value::MakeInt(n)},
                 {"K", Value::MakeInt(kGrid * kGrid)}};
       },
       {},
       {"C2"},
       1e-6});

  specs.push_back(
      {"matrix_factorization", kMatrixFactorization,
       [](int64_t n, std::mt19937_64& rng) -> Bindings {
         constexpr int64_t kRank = 2;
         Value p = FactorMatrix(n, kRank, rng);
         Value q = FactorMatrix(kRank, n, rng);
         return {{"R", SparseRandomMatrix(n, n, 0.1, rng)},
                 {"P0", p},
                 {"Q0", q},
                 {"P", p},
                 {"Q", q},
                 {"n", Value::MakeInt(n)},
                 {"m", Value::MakeInt(n)},
                 {"d", Value::MakeInt(kRank)},
                 {"a", Value::MakeDouble(0.002)},
                 {"b", Value::MakeDouble(0.02)}};
       },
       {},
       {"P", "Q"},
       1e-6});

  return specs;
}

}  // namespace

const std::vector<ProgramSpec>& BenchmarkPrograms() {
  static const auto* kPrograms = new std::vector<ProgramSpec>(BuildPrograms());
  return *kPrograms;
}

const ProgramSpec& GetProgram(const std::string& name) {
  for (const ProgramSpec& spec : BenchmarkPrograms()) {
    if (spec.name == name) return spec;
  }
  std::abort();
}

const std::vector<Table1Entry>& Table1Programs() {
  static const auto* kEntries = new std::vector<Table1Entry>{
      {"average", kAverage},
      {"conditional_count", kConditionalCount},
      {"conditional_sum", kConditionalSum},
      {"count", kCount},
      {"equal", kEqual},
      {"equal_frequency", kEqualFrequency},
      {"string_match", kStringMatch},
      {"sum", kSum},
      {"word_count", kWordCount},
      {"histogram", kHistogram},
      {"matrix_multiplication", kMatrixMultiplication},
      {"linear_regression", kLinearRegression},
      {"kmeans", kKMeans},
      {"pca", kPca},
      {"pagerank", kPageRank},
      {"matrix_factorization", kMatrixFactorization},
  };
  return *kEntries;
}

}  // namespace diablo::bench
