// Figure 3, panels A–G: the flat data-analysis programs — Conditional
// Sum, Equal, String Match, Word Count, Histogram, Linear Regression and
// Group By — DIABLO-translated vs hand-written, over growing inputs.
//
// Expected shape (paper §6): the DIABLO line tracks the hand-written line
// closely on all of these, because the generated plans contain the same
// single aggregation/shuffle as the hand-written Spark code.

#include "workloads/harness.h"

int main() {
  using diablo::bench::RunFigurePanel;
  const std::vector<int64_t> sizes = {25000, 50000, 100000, 200000, 400000};
  RunFigurePanel("Figure 3.A", "conditional_sum", sizes);
  RunFigurePanel("Figure 3.B", "equal", sizes);
  RunFigurePanel("Figure 3.C", "string_match", sizes);
  RunFigurePanel("Figure 3.D", "word_count", sizes);
  RunFigurePanel("Figure 3.E", "histogram",
                 {12500, 25000, 50000, 100000, 200000});
  RunFigurePanel("Figure 3.F", "linear_regression", sizes);
  RunFigurePanel("Figure 3.G", "group_by", sizes);
  return 0;
}
