// Ablation AB3 — cluster cost-model sensitivity: worker scaling and
// network-cost sweeps for one compute-bound plan (matrix multiplication)
// and one shuffle-bound plan (group-by), showing where each saturates.

#include <cstdio>
#include <random>

#include "workloads/harness.h"
#include "workloads/programs.h"

namespace {

void ScaleWorkers(const std::string& name, int64_t scale) {
  const auto& spec = diablo::bench::GetProgram(name);
  std::mt19937_64 rng(17);
  diablo::Bindings inputs = spec.make_inputs(scale, rng);
  // Run once; cost the same stage metrics under different worker counts.
  diablo::runtime::EngineConfig config;
  config.num_partitions = 64;  // enough tasks to spread across workers
  auto run = diablo::bench::Measure(
      config,
      [&](diablo::runtime::Engine& engine)
          -> diablo::StatusOr<diablo::runtime::Value> {
        auto compiled = diablo::Compile(spec.source);
        if (!compiled.ok()) return compiled.status();
        auto result = diablo::Run(*compiled, &engine, inputs);
        if (!result.ok()) return result.status();
        std::printf("%s (scale %lld):\n", name.c_str(),
                    static_cast<long long>(scale));
        std::printf("  %8s %14s %10s\n", "workers", "simulated(s)",
                    "speedup");
        diablo::runtime::ClusterModel model;
        model.num_workers = 1;
        double base = engine.metrics().SimulatedSeconds(model);
        for (int workers : {1, 2, 4, 8, 16, 32, 64}) {
          model.num_workers = workers;
          double t = engine.metrics().SimulatedSeconds(model);
          std::printf("  %8d %14.4f %9.1fx\n", workers, t, base / t);
        }
        // Network-cost sensitivity at 8 workers.
        model.num_workers = 8;
        std::printf("  network cost sweep (8 workers):\n");
        for (double mult : {0.1, 1.0, 10.0, 100.0}) {
          diablo::runtime::ClusterModel m = model;
          m.seconds_per_shuffle_byte *= mult;
          std::printf("  %7.1fx net cost -> %10.4f s\n", mult,
                      engine.metrics().SimulatedSeconds(m));
        }
        return diablo::runtime::Value::MakeUnit();
      });
  if (!run.ok()) {
    std::printf("%s ERROR: %s\n", name.c_str(),
                run.status().ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("AB3: cluster cost-model scaling\n\n");
  ScaleWorkers("matrix_multiplication", 32);
  ScaleWorkers("group_by", 200000);
  std::printf(
      "Compute-bound plans scale until per-stage latency dominates;\n"
      "shuffle-bound plans saturate earlier as the network term and the\n"
      "wide-stage latency stop shrinking with workers.\n");
  return 0;
}
